(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md section 2 for the experiment index).

   Usage:
     bench/main.exe                  run every table/figure reproduction
     bench/main.exe table4           one specific target
     bench/main.exe micro            Bechamel micro-benchmarks of the
                                     substrates
     bench/main.exe perf --json BENCH_PIPELINE.json [--schema FILE]
                                     profile the compile pipeline for every
                                     bundled ISAX x host core and write the
                                     machine-readable baseline (+ the
                                     metric-name schema) consumed by CI

   Targets: table1 table2 table3 table4 fig5 fig6 fig7 fig8 fig9 perf
            ablation outlook dse sharing extra micro *)

let sep title =
  Printf.printf "\n%s\n== %s\n%s\n" (String.make 78 '=') title (String.make 78 '=')

(* Lookups of bundled instructions/functionalities that must exist: a miss
   is an internal inconsistency, reported as a structured E0901 diagnostic
   (rendered by the top-level handler, exit 1) rather than an anonymous
   [Option.get] crash. *)
let require_tinstr (tu : Coredsl.Tast.tunit) name =
  match Coredsl.Tast.find_tinstr tu name with
  | Some ti -> ti
  | None ->
      Diag.fatalf ~code:"E0901" "internal: instruction %s is missing from unit %s" name
        tu.tu_name

let require_func (c : Longnail.Flow.compiled) name =
  match Longnail.Flow.find_func c name with
  | Some f -> f
  | None ->
      Diag.fatalf ~code:"E0901" "internal: functionality %s was not compiled for core %s" name
        c.core.Scaiev.Datasheet.core_name

(* One compilation session shared by every bench target: repeated
   (unit, core, knobs) compiles across tables replay from cache. The
   micro-benchmarks and the perf --json baseline deliberately bypass it
   (they measure the cold path). *)
let session = Longnail.Flow.create_session ()

(* Request-building shorthand: the bench compiles under many one-off knob
   combinations, all through the shared session unless stated otherwise. *)
let mkrequest ?scheduler ?delay ?cycle_time ?hazard_handling ?(session = session) () =
  Longnail.Flow.Request.make ?scheduler ?delay ?cycle_time ?hazard_handling ~session ()

(* ---- Table 1: SCAIE-V sub-interface operations ---- *)

let table1 () =
  sep "Table 1: SCAIE-V sub-interface operations (32-bit host core)";
  Format.printf "%a@." Scaiev.Iface.pp_table1 ()

(* ---- Table 2: scheduling problem hierarchy ---- *)

let table2 () =
  sep "Table 2: Longnail scheduling problem model (demonstrated instance)";
  print_endline
    "Problem          properties: linkedOperatorType, startTime; op-type: latency";
  print_endline
    "ChainingProblem  adds: startTimeInCycle; op-type: incoming/outgoingDelay";
  print_endline
    "LongnailProblem  adds op-type: earliest, latest  (SCAIE-V virtual datasheet)";
  print_endline "";
  (* demonstrate on the ADDI instance: solve and verify all three levels *)
  let tu = Coredsl.compile_rv32i () in
  let addi = require_tinstr tu "ADDI" in
  let core = Scaiev.Datasheet.vexriscv in
  let f = Longnail.Flow.compile_functionality ~request:(mkrequest ()) core tu (`Instr addi) in
  let p = f.cf_built.Longnail.Sched_build.problem in
  Sched.Problem.verify_precedence p;
  print_endline "solution constraints (Problem level):         satisfied";
  Sched.Problem.verify_chaining p;
  print_endline "solution constraints (ChainingProblem level): satisfied";
  Sched.Problem.verify_windows p;
  print_endline "solution constraints (LongnailProblem level): satisfied"

(* ---- Table 3: benchmark ISAXes ---- *)

let table3 () =
  sep "Table 3: ISAXes used in the evaluation";
  Printf.printf "%-15s | %-60s | %s\n" "ISAX" "Description" "Demonstrates";
  Printf.printf "%s\n" (String.make 140 '-');
  List.iter
    (fun (e : Isax.Registry.entry) ->
      Printf.printf "%-15s | %-60s | %s\n" e.name e.description e.demonstrates)
    Isax.Registry.all

(* ---- Table 4: ASIC results ---- *)

(* the paper's Table 4 numbers (area %, freq %) for side-by-side comparison:
   ORCA, Piccolo, PicoRV32, VexRiscv *)
let paper_table4 =
  [
    ("autoinc", [ (20, -6); (3, -9); (23, 0); (12, 2) ]);
    ("dotprod", [ (23, -14); (4, 0); (21, -2); (21, 2) ]);
    ("ijmp", [ (2, -3); (7, 3); (7, 2); (12, 0) ]);
    ("sbox", [ (7, -2); (0, 3); (6, 2); (8, -1) ]);
    ("sparkle", [ (85, -24); (2, -1); (46, 0); (45, -2) ]);
    ("sqrt_tightly", [ (80, -32); (22, -15); (100, -5); (43, -8) ]);
    ("sqrt_decoupled", [ (56, -5); (10, 3); (111, -7); (47, 6) ]);
    ("  w/o hazard handling", [ (46, -6); (10, 3); (96, -2); (40, 4) ]);
    ("zol", [ (7, -2); (13, 4); (10, -1); (14, -3) ]);
    ("autoinc+zol", [ (29, -6); (3, 2); (32, -1); (16, 5) ]);
  ]

let table4 () =
  sep "Table 4: ASIC area and frequency overheads (measured vs. paper)";
  (* pinned to the registry's paper cores: Table 4 has exactly these
     four columns, in this order, with [paper_table4] paired by index *)
  let paper_cores = Scaiev.Core_registry.paper_datasheets () in
  Printf.printf "Base cores (area excluding caches / reachable frequency):\n";
  List.iter
    (fun (c : Scaiev.Datasheet.t) ->
      Printf.printf "  %-9s %8.0f um^2  %5.0f MHz\n" c.core_name c.base_area_um2 c.base_freq_mhz)
    paper_cores;
  Printf.printf "\n%-22s" "";
  List.iter
    (fun (c : Scaiev.Datasheet.t) -> Printf.printf "| %-21s " c.core_name)
    paper_cores;
  Printf.printf "\n%-22s" "ISAX";
  List.iter (fun _ -> Printf.printf "| %-10s %-10s " "area" "freq") paper_cores;
  Printf.printf "\n%s\n" (String.make 118 '-');
  let row label results paper =
    Printf.printf "%-22s" label;
    List.iteri
      (fun i (r : Asic.Flow.result) ->
        let pa, pf = List.nth paper i in
        Printf.printf "| +%3.0f%%(+%3d) %+3.0f%%(%+3d) " r.area_overhead_pct pa r.freq_delta_pct pf)
      results;
    print_newline ()
  in
  List.iter
    (fun (e : Isax.Registry.entry) ->
      let tu = Isax.Registry.compile e in
      let results =
        List.map
          (fun core -> Asic.Flow.run ~isax_name:e.name (Longnail.Flow.compile ~request:(mkrequest ()) core tu))
          paper_cores
      in
      row e.name results (List.assoc e.name paper_table4);
      if e.name = "sqrt_decoupled" then begin
        (* the Table 4 sub-row: decoupled without data-hazard handling *)
        let results =
          List.map
            (fun core ->
              Asic.Flow.run ~isax_name:(e.name ^ "-nohazard")
                (Longnail.Flow.compile ~request:(mkrequest ~hazard_handling:false ()) core tu))
            paper_cores
        in
        row "  w/o hazard handling" results (List.assoc "  w/o hazard handling" paper_table4)
      end)
    Isax.Registry.all;
  print_endline "\n(each cell: measured(paper); paper values from Table 4 of the ASPLOS'24 paper)"

(* ---- Figure 5: the ADDI running example at four levels ---- *)

let fig5 () =
  sep "Figure 5: ADDI at four abstraction levels";
  print_endline "(a) CoreDSL description:\n";
  print_endline
    {|    ADDI {
      encoding: imm[11:0] :: rs1[4:0] :: 3'b000 :: rd[4:0] :: 7'b0010011;
      behavior: { if (rd != 0) X[rd] = (unsigned<32>)(X[rs1] + (signed<12>)imm); }
    }|};
  let tu = Coredsl.compile_rv32i () in
  let addi = require_tinstr tu "ADDI" in
  let hg = Ir.Hlir.lower_instruction tu addi in
  print_endline "\n(b) high-level IR (coredsl + hwarith dialects):\n";
  print_endline (Ir.Mir.graph_to_string hg);
  let lg = Ir.Passes.optimize (Ir.Lil.of_hlir tu.elab ~fields:addi.fields hg) in
  print_endline "\n(c) data-flow graph (lil + comb dialects):\n";
  print_endline (Ir.Mir.graph_to_string lg);
  let core = Scaiev.Datasheet.vexriscv in
  let f = Longnail.Flow.compile_functionality ~request:(mkrequest ()) core tu (`Instr addi) in
  print_endline "\n(d) register-transfer level (SystemVerilog, VexRiscv schedule):\n";
  print_endline f.cf_sv

(* ---- Figure 6: the scheduled LongnailProblem instance ---- *)

let fig6 () =
  sep "Figure 6: LongnailProblem instance for ADDI (cycle time 3.5 ns)";
  let tu = Coredsl.compile_rv32i () in
  let addi = require_tinstr tu "ADDI" in
  let core = Scaiev.Datasheet.vexriscv in
  let f =
    Longnail.Flow.compile_functionality
      ~request:(mkrequest ~cycle_time:3.5 ~delay:Longnail.Delay_model.Physical ())
      core tu (`Instr addi)
  in
  print_string (Sched.Problem.to_string f.cf_built.Longnail.Sched_build.problem)

(* ---- Figure 7: the scheduling ILP ---- *)

let fig7 () =
  sep "Figure 7: ILP formulation (generated instance for ADDI)";
  print_endline
    "minimize   sum(t_i) + sum(l_ij)\nsubject to (C1) t_i + latency_i <= t_j\n\
    \           (C2) l_ij >= t_j - t_i\n           (C3) earliest_i <= t_i <= latest_i\n\
    \           (C4) t_i, l_ij in N0\n           (C5) t_i + latency_i + 1 <= t_j  (chain breakers)\n";
  let tu = Coredsl.compile_rv32i () in
  let addi = require_tinstr tu "ADDI" in
  let core = Scaiev.Datasheet.vexriscv in
  let f = Longnail.Flow.compile_functionality ~request:(mkrequest ()) core tu (`Instr addi) in
  print_endline (Sched.Ilp_scheduler.ilp_text f.cf_built.Longnail.Sched_build.problem)

(* ---- Figure 8: SCAIE-V configuration for the ZOL ISAX ---- *)

let fig8 () =
  sep "Figure 8: SCAIE-V configuration file for the ZOL ISAX (VexRiscv)";
  let c =
    Longnail.Flow.compile ~request:(mkrequest ()) Scaiev.Datasheet.vexriscv
      (Isax.Registry.compile_by_name "zol")
  in
  print_string c.Longnail.Flow.config_yaml

(* ---- Figure 9: flow overview with metadata exchange ---- *)

let fig9 () =
  sep "Figure 9: Longnail <-> SCAIE-V metadata exchange";
  print_endline "virtual datasheet (5-stage VexRiscv):\n";
  print_string (Scaiev.Datasheet.to_yaml Scaiev.Datasheet.vexriscv);
  print_endline "\nexported SCAIE-V configuration for ADDI scheduled on this core:\n";
  let tu = Coredsl.compile_rv32i () in
  let addi = require_tinstr tu "ADDI" in
  let core = Scaiev.Datasheet.vexriscv in
  let f = Longnail.Flow.compile_functionality ~request:(mkrequest ()) core tu (`Instr addi) in
  let cfg =
    {
      Scaiev.Config.regs = [];
      funcs =
        [
          Longnail.Config_gen.functionality_of ~name:"ADDI" ~kind:`Instruction
            ~mask:(Longnail.Flow.mask_of addi) f.cf_hw;
        ];
    }
  in
  print_string (Scaiev.Config.to_yaml cfg)

(* ---- Section 5.5: performance case study ---- *)

let perf () =
  sep "Section 5.5: array-sum case study on VexRiscv (cycles)";
  let tu = Isax.Registry.compile_by_name "autoinc+zol" in
  let c = Longnail.Flow.compile ~request:(mkrequest ()) Scaiev.Datasheet.vexriscv tu in
  Printf.printf "%8s %14s %14s %10s\n" "n" "baseline" "autoinc+zol" "speedup";
  List.iter
    (fun n ->
      let b = Riscv.Case_study.run_baseline ~n in
      let i = Riscv.Case_study.run_isax ~n c in
      assert (b.checksum = Riscv.Case_study.expected_sum n);
      assert (i.checksum = Riscv.Case_study.expected_sum n);
      Printf.printf "%8d %14d %14d %9.2fx\n" n b.cycles i.cycles
        (float_of_int b.cycles /. float_of_int i.cycles))
    [ 8; 16; 32; 64; 128; 256; 512; 1024 ];
  let b1 = Riscv.Case_study.run_baseline ~n:64 and b2 = Riscv.Case_study.run_baseline ~n:1024 in
  let i1 = Riscv.Case_study.run_isax ~n:64 c and i2 = Riscv.Case_study.run_isax ~n:1024 c in
  let ab, bb = Riscv.Case_study.fit (64, b1.cycles) (1024, b2.cycles) in
  let ai, bi = Riscv.Case_study.fit (64, i1.cycles) (1024, i2.cycles) in
  Printf.printf "\nfitted: baseline = %dn + %d   (paper: 18n + 50)\n" ab bb;
  Printf.printf "fitted: isax     = %dn + %d   (paper: 11n + 50)\n" ai bi;
  let area = (Asic.Flow.run ~isax_name:"autoinc+zol" c).Asic.Flow.area_overhead_pct in
  Printf.printf "\narea overhead of autoinc+zol on VexRiscv: +%.0f%% (paper: +16%%)\n" area;
  Printf.printf "asymptotic speedup: +%.0f%% (paper: >60%%)\n" ((18.0 /. 11.0 -. 1.0) *. 100.0)

(* ---- perf --json: the machine-readable pipeline baseline ---- *)

(* Compile every bundled ISAX on every host core with profiling enabled
   and write one JSON document with per-stage wall times and IR-size
   metrics — the baseline every later compile-time PR is judged against.
   The span trees are validated (no empty or non-finite metrics) before
   anything is written, so a corrupted run exits nonzero and CI fails. *)

let profile_one ?(verify_each = false) (core : Scaiev.Datasheet.t) (e : Isax.Registry.entry) =
  let obs = Obs.create ~name:"compile" () in
  (* a fresh session per target: the baseline measures the cold path, and
     every target carries the identical (all-miss) cache-counter schema *)
  let psession = Longnail.Flow.create_session () in
  let fe_key =
    Cache.Fp.digest (fun b ->
        Cache.Fp.add_tag b "registry";
        Cache.Fp.add_string b e.name;
        Cache.Fp.add_string b e.target;
        Cache.Fp.add_string b e.source)
  in
  let tu =
    Obs.span obs "parse_typecheck" (fun sobs ->
        let tu =
          Longnail.Flow.frontend psession ~obs:sobs ~key:fe_key (fun () ->
              Isax.Registry.compile e)
        in
        Obs.metric_int sobs "source_bytes" (String.length e.source);
        Obs.metric_int sobs "n_instructions" (List.length tu.Coredsl.Tast.tinstrs);
        Obs.metric_int sobs "n_always" (List.length tu.Coredsl.Tast.talways);
        tu)
  in
  (* through the batch driver (one target, jobs=1) so the baseline schema
     matches the CLI's --profile output: parallel_compile + target:* spans *)
  let request = Longnail.Flow.Request.make ~session:psession ~obs ~verify_each () in
  ignore (Longnail.Flow.compile_many ~request [ (core, tu) ]);
  Obs.finish obs;
  let sp = Obs.root obs in
  Obs.validate sp;
  sp

(* Warm-vs-cold DSE sweep through one sweep session: the cold pass runs
   the full grid, the warm pass must replay every point (including the
   ASIC measurement) from cache — the acceptance gate for the
   content-addressed sessions. *)
let dse_sweep_json ?(assert_warm = false) () =
  let isax = "dotprod" and core = Scaiev.Datasheet.vexriscv in
  let tu = Isax.Registry.compile_by_name isax in
  let measure c =
    let r = Asic.Flow.run ~isax_name:isax c in
    (r.Asic.Flow.area_overhead_pct, r.Asic.Flow.achieved_freq_mhz)
  in
  let ss = Longnail.Dse.sweep_session () in
  let t0 = Unix.gettimeofday () in
  let cold = Longnail.Dse.explore ~sweep:ss ~measure core tu in
  let t1 = Unix.gettimeofday () in
  let warm = Longnail.Dse.explore ~sweep:ss ~measure core tu in
  let t2 = Unix.gettimeofday () in
  if warm <> cold then
    Diag.fatalf ~code:"E0901"
      "internal: warm DSE sweep of %s on %s diverges from the cold sweep" isax
      core.Scaiev.Datasheet.core_name;
  let cold_ms = (t1 -. t0) *. 1000.0 and warm_ms = (t2 -. t1) *. 1000.0 in
  let speedup = cold_ms /. Float.max warm_ms 1e-6 in
  if speedup < 2.0 then
    Diag.fatalf ~code:"E0901"
      "internal: warm DSE sweep speedup %.2fx < 2x (cold %.1f ms, warm %.1f ms)" speedup
      cold_ms warm_ms;
  (* the persistent solver instances behind the sweep: the cold grid is
     evaluated largest cycle factor first, so every later grid point
     warm-starts its re-schedule from the previous least element *)
  let sst = Longnail.Flow.session_solver_stats ss.Longnail.Dse.ss_flow in
  let pareto = List.length (List.filter (fun (p : Longnail.Dse.point) -> p.dp_pareto) cold) in
  if assert_warm then begin
    if sst.Lp.Instance.is_warm_hits = 0 then
      Diag.fatalf ~code:"E0901"
        "internal: --assert-dse-warm: the sweep's solver instances recorded no warm hits \
         (%d resolves)"
        sst.Lp.Instance.is_resolves;
    Printf.eprintf "dse-warm assertion: %d/%d warm resolves, %.2fx sweep speedup\n%!"
      sst.Lp.Instance.is_warm_hits sst.Lp.Instance.is_resolves speedup
  end;
  let solver_json =
    Printf.sprintf
      "\"solver\":{\"instances\":%d,\"resolves\":%d,\"warm_hits\":%d,\"warm_misses\":%d,\"fastpath\":%d,\"bf_rounds\":%d,\"bnb_nodes\":%d,\"pivots\":%d,\"phase1_pivots\":%d,\"dual_pivots\":%d}"
      (Longnail.Flow.session_solver_count ss.Longnail.Dse.ss_flow)
      sst.Lp.Instance.is_resolves sst.Lp.Instance.is_warm_hits sst.Lp.Instance.is_warm_misses
      sst.Lp.Instance.is_fastpath sst.Lp.Instance.is_bf_rounds sst.Lp.Instance.is_bnb_nodes
      sst.Lp.Instance.is_pivots sst.Lp.Instance.is_phase1_pivots
      sst.Lp.Instance.is_dual_pivots
  in
  let stats_json stats =
    String.concat ","
      (List.map
         (fun (name, (st : Cache.Store.stats)) ->
           Printf.sprintf
             "\"%s\":{\"hits\":%d,\"misses\":%d,\"stores\":%d,\"evictions\":%d}" name st.hits
             st.misses st.stores st.evictions)
         stats)
  in
  let cache_stats =
    Longnail.Flow.session_stats ss.Longnail.Dse.ss_flow
    @ [
        ( Cache.Store.name ss.Longnail.Dse.ss_measure,
          Cache.Store.stats ss.Longnail.Dse.ss_measure );
      ]
  in
  Printf.sprintf
    "\"cache\":{%s},%s,\"dse_sweep\":{\"isax\":\"%s\",\"core\":\"%s\",\"points\":%d,\"pareto_points\":%d,\"cold_ms\":%.3f,\"warm_ms\":%.3f,\"warm_speedup\":%.2f,\"solver_warm_hits\":%d}"
    (stats_json cache_stats) solver_json isax core.Scaiev.Datasheet.core_name
    (List.length cold) pareto cold_ms warm_ms speedup sst.Lp.Instance.is_warm_hits

(* Parallel-vs-sequential equivalence: compile the full bundled
   ISAX x core grid once at jobs=1 and once at the requested job count,
   each through a fresh session, and compare every artifact byte
   (SystemVerilog modules + configuration YAML). The [speedup] field is
   always present — CI greps for it — but only meaningful when the host
   actually has spare cores; [--assert-par-equal] turns a byte
   divergence into a fatal error. *)
let par_json ~jobs ?(verify_each = false) ~assert_equal () =
  let targets =
    List.concat_map
      (fun (core : Scaiev.Datasheet.t) ->
        List.map (fun (e : Isax.Registry.entry) -> (core, Isax.Registry.compile e))
          Isax.Registry.all)
      (Scaiev.Core_registry.datasheets ())
  in
  let compile_all jobs =
    let psession = Longnail.Flow.create_session () in
    let request = Longnail.Flow.Request.make ~session:psession ~jobs ~verify_each () in
    let t0 = Unix.gettimeofday () in
    let cs = Longnail.Flow.compile_many ~request targets in
    ((Unix.gettimeofday () -. t0) *. 1000.0, cs)
  in
  let seq_ms, seq = compile_all 1 in
  let par_ms, par = compile_all jobs in
  let artifact_bytes (c : Longnail.Flow.compiled) =
    String.concat "\x00" (List.map (fun (f : Longnail.Flow.compiled_functionality) -> f.cf_sv) c.funcs)
    ^ "\x01" ^ c.config_yaml
  in
  let bytes_equal =
    List.length seq = List.length par
    && List.for_all2 (fun a b -> artifact_bytes a = artifact_bytes b) seq par
  in
  if assert_equal && not bytes_equal then
    Diag.fatalf ~code:"E0901"
      "internal: parallel compile (jobs=%d) produced different artifact bytes than the \
       sequential run" jobs;
  let speedup = seq_ms /. Float.max par_ms 1e-6 in
  Printf.sprintf
    "\"par\":{\"jobs\":%d,\"host_cores\":%d,\"targets\":%d,\"seq_ms\":%.3f,\"par_ms\":%.3f,\"speedup\":%.2f,\"bytes_equal\":%b}"
    jobs (Par.available_workers ()) (List.length targets) seq_ms par_ms speedup bytes_equal

(* Cross-process warm compile via the on-disk artifact store, simulated
   by two fresh in-memory sessions sharing one store directory: the
   "cold process" populates the store, the "warm process" must answer
   every target from disk — zero misses, no netlists rebuilt — with
   byte-identical artifacts (they *are* the cold run's bytes). *)
let disk_cache_json () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "longnail-bench-disk-%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then rm dir;
  let targets =
    List.map
      (fun (e : Isax.Registry.entry) ->
        (Scaiev.Datasheet.vexriscv, Isax.Registry.compile e))
      Isax.Registry.all
  in
  let run_process () =
    let disk = Cache.Disk.open_store dir in
    let psession = Longnail.Flow.create_session ~disk () in
    let request = Longnail.Flow.Request.make ~session:psession () in
    let t0 = Unix.gettimeofday () in
    let outs = Longnail.Flow.compile_many_outputs ~request targets in
    ((Unix.gettimeofday () -. t0) *. 1000.0, outs, Cache.Disk.stats disk)
  in
  let cold_ms, cold, cold_st = run_process () in
  let warm_ms, warm, warm_st = run_process () in
  let outputs_bytes (o : Longnail.Flow.outputs) =
    String.concat "\x00"
      (List.map (fun (f : Longnail.Flow.output_func) -> f.of_sv) o.o_funcs)
    ^ "\x01" ^ o.o_yaml
  in
  let bytes_equal =
    List.length cold = List.length warm
    && List.for_all2 (fun a b -> outputs_bytes a = outputs_bytes b) cold warm
  in
  if not bytes_equal then
    Diag.fatalf ~code:"E0901"
      "internal: disk-warm compile produced different artifact bytes than the cold run";
  if warm_st.Cache.Disk.hits = 0 || warm_st.Cache.Disk.misses > 0 then
    Diag.fatalf ~code:"E0901"
      "internal: warm process expected all-hit disk reload, got %d hits / %d misses"
      warm_st.Cache.Disk.hits warm_st.Cache.Disk.misses;
  let speedup = cold_ms /. Float.max warm_ms 1e-6 in
  if speedup < 2.0 then
    Diag.fatalf ~code:"E0901"
      "internal: disk-warm speedup %.2fx < 2x (cold %.1f ms, warm %.1f ms)" speedup cold_ms
      warm_ms;
  rm dir;
  let stats_json (st : Cache.Disk.stats) =
    Printf.sprintf
      "{\"hits\":%d,\"misses\":%d,\"stores\":%d,\"evictions\":%d,\"corrupt\":%d,\"bytes\":%d}"
      st.hits st.misses st.stores st.evictions st.corrupt st.bytes
  in
  Printf.sprintf
    "\"disk_cache\":{\"targets\":%d,\"cold_ms\":%.3f,\"warm_ms\":%.3f,\"warm_speedup\":%.2f,\"bytes_equal\":%b,\"cold\":%s,\"warm\":%s}"
    (List.length targets) cold_ms warm_ms speedup bytes_equal (stats_json cold_st)
    (stats_json warm_st)

(* Serve-daemon throughput: run the daemon on a spawned domain against a
   temp socket, sweep every bundled ISAX through one client twice (cold
   session, then warm), then hit the warm daemon from several concurrent
   client domains. A malformed request is thrown in at the end to prove
   per-request isolation before the clean shutdown. *)
let serve_json () =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "longnail-bench-%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists socket then Sys.remove socket;
  let srv = Server.create ~session:(Longnail.Flow.create_session ()) ~socket () in
  let daemon = Domain.spawn (fun () -> Server.serve srv) in
  let req id isax =
    Printf.sprintf {|{"id":%d,"op":"compile","isax":"%s","core":"vexriscv"}|} id isax
  in
  let isaxes = List.map (fun (e : Isax.Registry.entry) -> e.name) Isax.Registry.all in
  let ok_done events =
    match List.rev events with
    | last :: _ -> Server.Json.get_bool (Server.Json.member "ok" last) = Some true
    | [] -> false
  in
  let sweep c tag =
    List.iteri
      (fun i name ->
        if not (ok_done (Server.Client.request c (req i name))) then
          Diag.fatalf ~code:"E0901" "internal: %s serve request for %s failed" tag name)
      isaxes
  in
  let c = Server.Client.connect ~retries:50 socket in
  let t0 = Unix.gettimeofday () in
  sweep c "cold";
  let t1 = Unix.gettimeofday () in
  sweep c "warm";
  let t2 = Unix.gettimeofday () in
  Server.Client.close c;
  let cold_ms = (t1 -. t0) *. 1000.0 and warm_ms = (t2 -. t1) *. 1000.0 in
  let n_clients = 4 in
  let t3 = Unix.gettimeofday () in
  let workers =
    List.init n_clients (fun _ ->
        Domain.spawn (fun () ->
            let c = Server.Client.connect ~retries:50 socket in
            let ok =
              List.for_all
                (fun name -> ok_done (Server.Client.request c (req 0 name)))
                isaxes
            in
            Server.Client.close c;
            ok))
  in
  let oks = List.map Domain.join workers in
  let concurrent_ms = (Unix.gettimeofday () -. t3) *. 1000.0 in
  if not (List.for_all Fun.id oks) then
    Diag.fatalf ~code:"E0901" "internal: a concurrent serve client failed";
  let c = Server.Client.connect socket in
  (match Server.Client.request c {|{"op":|} with
  | [ j ] when Server.Json.get_bool (Server.Json.member "ok" j) = Some false -> ()
  | _ ->
      Diag.fatalf ~code:"E0901"
        "internal: a malformed request did not produce a single error done event");
  sweep c "post-error";
  ignore (Server.Client.request c {|{"op":"shutdown"}|});
  Server.Client.close c;
  Domain.join daemon;
  let n = List.length isaxes in
  let rps ms reqs = float_of_int reqs /. Float.max (ms /. 1000.0) 1e-9 in
  Printf.sprintf
    "\"serve\":{\"targets\":%d,\"clients\":%d,\"cold_ms\":%.3f,\"warm_ms\":%.3f,\"warm_rps\":%.1f,\"concurrent_ms\":%.3f,\"concurrent_rps\":%.1f,\"requests\":%d}"
    n n_clients cold_ms warm_ms (rps warm_ms n) concurrent_ms
    (rps concurrent_ms (n_clients * n))
    (Server.requests_served srv)

(* Static-analysis timing: run the W1xxx linter over every bundled ISAX
   and report per-unit wall time and warning counts. The total count is
   the same figure the CI lint gate pins via docs/LINT_GOLDEN.txt. *)
let lint_json () =
  let entries =
    List.map
      (fun (e : Isax.Registry.entry) ->
        let tu = Isax.Registry.compile e in
        let t0 = Unix.gettimeofday () in
        let warnings = Analysis.Lint.lint_unit tu in
        let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
        (e.name, List.length warnings, ms))
      Isax.Registry.all
  in
  let total = List.fold_left (fun n (_, w, _) -> n + w) 0 entries in
  let total_ms = List.fold_left (fun t (_, _, ms) -> t +. ms) 0.0 entries in
  Printf.sprintf "\"lint\":{\"units\":[%s],\"warnings\":%d,\"total_ms\":%.3f}"
    (String.concat ","
       (List.map
          (fun (name, w, ms) ->
            Printf.sprintf "{\"isax\":\"%s\",\"warnings\":%d,\"ms\":%.3f}" name w ms)
          entries))
    total total_ms

(* Analysis-driven width narrowing: per-ISAX rewrite statistics plus the
   pipeline-register delta the narrowed datapath buys when scheduled on
   vexriscv. The statistics run the same translation-validated passes
   the --narrow=on knob enables inside the flow; the register delta
   compares full compiles with the knob off and on. `--assert-narrow`
   pins the contract: narrowing removes bits in >= 3 bundled ISAXes and
   every graph that was rewritten was translation-validated. *)
let narrow_json ~assert_narrow () =
  let entries =
    List.map
      (fun (e : Isax.Registry.entry) ->
        let tu = Isax.Registry.compile e in
        let t0 = Unix.gettimeofday () in
        let stats = ref Analysis.Narrow.zero_stats in
        let add (st : Analysis.Narrow.stats) =
          let s = !stats in
          stats :=
            {
              Analysis.Narrow.ns_ops_rewritten = s.ns_ops_rewritten + st.ns_ops_rewritten;
              ns_bits_removed = s.ns_bits_removed + st.ns_bits_removed;
              ns_compares_folded = s.ns_compares_folded + st.ns_compares_folded;
              ns_selects_removed = s.ns_selects_removed + st.ns_selects_removed;
              ns_tv_validations = s.ns_tv_validations + st.ns_tv_validations;
              ns_tv_vectors = s.ns_tv_vectors + st.ns_tv_vectors;
              ns_tv_exhaustive = s.ns_tv_exhaustive + st.ns_tv_exhaustive;
            }
        in
        let narrow_of hlir fields =
          let lil =
            Ir.Passes.optimize (Ir.Lil.of_hlir tu.Coredsl.Tast.elab ~fields hlir)
          in
          let _, st = Analysis.Narrow.narrow_graph lil in
          add st
        in
        List.iter
          (fun ti ->
            if Longnail.Flow.is_isax_instruction ti then
              narrow_of (Ir.Hlir.lower_instruction tu ti) ti.Coredsl.Tast.fields)
          tu.Coredsl.Tast.tinstrs;
        List.iter (fun ta -> narrow_of (Ir.Hlir.lower_always tu ta) []) tu.Coredsl.Tast.talways;
        let pipe_bits narrow =
          let request =
            Longnail.Flow.Request.make ~session
              ~knobs:(Longnail.Flow.knobs ~narrow ())
              ()
          in
          let c = Longnail.Flow.compile ~request Scaiev.Datasheet.vexriscv tu in
          List.fold_left
            (fun acc (f : Longnail.Flow.compiled_functionality) ->
              acc + f.cf_hw.Longnail.Hwgen.pipe_reg_bits)
            0 c.Longnail.Flow.funcs
        in
        let bits_off = pipe_bits false and bits_on = pipe_bits true in
        let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
        (e.name, !stats, bits_off, bits_on, ms))
      Isax.Registry.all
  in
  if assert_narrow then begin
    let fired =
      List.length
        (List.filter
           (fun (_, (st : Analysis.Narrow.stats), _, _, _) -> st.ns_bits_removed > 0)
           entries)
    in
    if fired < 3 then
      Diag.fatalf ~code:"E0901"
        "internal: --assert-narrow: narrowing removed bits in only %d bundled ISAXes; the \
         contract is >= 3"
        fired;
    List.iter
      (fun (name, (st : Analysis.Narrow.stats), _, _, _) ->
        if st.ns_ops_rewritten > 0 && st.ns_tv_validations = 0 then
          Diag.fatalf ~code:"E0901"
            "internal: --assert-narrow: %s was rewritten without translation validation" name)
      entries
  end;
  let total f = List.fold_left (fun acc (_, st, _, _, _) -> acc + f st) 0 entries in
  Printf.sprintf
    "\"narrow\":{\"units\":[%s],\"ops_rewritten\":%d,\"bits_removed\":%d,\"tv_validations\":%d}"
    (String.concat ","
       (List.map
          (fun (name, (st : Analysis.Narrow.stats), bits_off, bits_on, ms) ->
            Printf.sprintf
              "{\"isax\":\"%s\",\"ops_rewritten\":%d,\"bits_removed\":%d,\"compares_folded\":%d,\"selects_removed\":%d,\"tv_validations\":%d,\"tv_vectors\":%d,\"pipe_reg_bits_off\":%d,\"pipe_reg_bits_on\":%d,\"ms\":%.3f}"
              name st.ns_ops_rewritten st.ns_bits_removed st.ns_compares_folded
              st.ns_selects_removed st.ns_tv_validations st.ns_tv_vectors bits_off bits_on ms)
          entries))
    (total (fun st -> st.Analysis.Narrow.ns_ops_rewritten))
    (total (fun st -> st.Analysis.Narrow.ns_bits_removed))
    (total (fun st -> st.Analysis.Narrow.ns_tv_validations))

(* Simulation-engine comparison: run the same generated module for many
   driven cycles on the reference interpreter and on the compiled engine,
   report cycles/sec for each, and check the full VCD traces of a shared
   deterministic stimulus are byte-identical. `--assert-sim-equal` turns
   the two invariants the refactor promises — bit-identical traces and a
   >= 10x compiled speedup — into hard CI failures. *)
let rtl_sim_json ~assert_sim_equal () =
  let tu = Isax.Registry.compile_by_name "dotprod" in
  let compiled = Longnail.Flow.compile Scaiev.Datasheet.vexriscv tu in
  let f = List.hd compiled.Longnail.Flow.funcs in
  let m = f.Longnail.Flow.cf_hw.Longnail.Hwgen.netlist in
  (* deterministic per-cycle stimulus over every input port *)
  let drive cycle =
    List.map
      (fun (p : Rtl.Netlist.port) ->
        let h = Hashtbl.hash (p.port_name, cycle) in
        (p.port_name, Bitvec.of_int (Bitvec.unsigned_ty p.port_width) h))
      m.Rtl.Netlist.inputs
  in
  (* throughput: one engine instance driven until the time budget runs
     out, so per-cycle cost dominates and engine construction does not. *)
  let cycles_per_sec kind =
    let eng = Rtl.Engine.create ~kind m in
    let budget = 0.25 in
    let t0 = Unix.gettimeofday () in
    let cycles = ref 0 in
    while Unix.gettimeofday () -. t0 < budget do
      for _ = 1 to 50 do
        List.iter (fun (n, v) -> Rtl.Engine.set_input eng n v) (drive !cycles);
        Rtl.Engine.eval eng;
        Rtl.Engine.clock eng;
        incr cycles
      done
    done;
    float_of_int !cycles /. (Unix.gettimeofday () -. t0)
  in
  let interp_cps = cycles_per_sec Rtl.Engine.Interp in
  let compiled_cps = cycles_per_sec Rtl.Engine.Compiled in
  let speedup = compiled_cps /. Float.max interp_cps 1e-9 in
  let trace_cycles = 64 in
  let vcd_interp = Rtl.Vcd.trace ~engine:Rtl.Engine.Interp m ~cycles:trace_cycles ~drive in
  let vcd_compiled =
    Rtl.Vcd.trace ~engine:Rtl.Engine.Compiled m ~cycles:trace_cycles ~drive
  in
  let equal = Rtl.Vcd.traces_equal vcd_interp vcd_compiled in
  if assert_sim_equal then begin
    (match Rtl.Vcd.first_divergence vcd_interp vcd_compiled with
    | Some (line, l, r) ->
        Diag.fatalf ~code:"E0901"
          "internal: --assert-sim-equal: engine traces diverge at VCD line %d (interp %S, \
           compiled %S)"
          line l r
    | None -> ());
    if speedup < 10.0 then
      Diag.fatalf ~code:"E0901"
        "internal: --assert-sim-equal: compiled engine is only %.1fx the interpreter \
         (%.0f vs %.0f cycles/sec); the contract is >= 10x"
        speedup compiled_cps interp_cps
  end;
  Printf.sprintf
    "\"rtl_sim\":{\"module\":\"%s\",\"nodes\":%d,\"trace_cycles\":%d,\"interp_cycles_per_sec\":%.1f,\"compiled_cycles_per_sec\":%.1f,\"speedup\":%.2f,\"traces_equal\":%b}"
    m.Rtl.Netlist.mod_name
    (List.length m.Rtl.Netlist.nodes)
    trace_cycles interp_cps compiled_cps speedup equal

let perf_json ~jobs ?(verify_each = false) ~assert_par_equal ?(assert_sim_equal = false)
    ?(assert_dse_warm = false) ?(assert_narrow = false) ~json_path ~schema_path () =
  let results =
    List.concat_map
      (fun (core : Scaiev.Datasheet.t) ->
        List.map
          (fun (e : Isax.Registry.entry) ->
            Printf.eprintf "profiling %s on %s...\n%!" e.name core.core_name;
            (e.name, core.core_name, profile_one ~verify_each core e))
          Isax.Registry.all)
      (Scaiev.Core_registry.datasheets ())
  in
  if results = [] then Diag.fatalf ~code:"E0901" "internal: perf --json produced no targets";
  (* the schema must be identical for every target: same stages, same
     metric names. A divergence means a stage was skipped or renamed. *)
  let schema =
    match results with
    | (_, _, sp0) :: rest ->
        let s0 = Obs.schema sp0 in
        List.iter
          (fun (isax, core, sp) ->
            if Obs.schema sp <> s0 then
              Diag.fatalf ~code:"E0901" "internal: metric schema of %s on %s diverges" isax
                core)
          rest;
        s0
    | [] -> assert false
  in
  Printf.eprintf "running warm-vs-cold DSE sweep...\n%!";
  let sweep_json = dse_sweep_json ~assert_warm:assert_dse_warm () in
  Printf.eprintf "running parallel-vs-sequential grid (jobs=%d)...\n%!" jobs;
  let parallel_json = par_json ~jobs ~verify_each ~assert_equal:assert_par_equal () in
  Printf.eprintf "running cold-vs-warm disk store...\n%!";
  let disk_json = disk_cache_json () in
  Printf.eprintf "running serve-daemon throughput...\n%!";
  let serving_json = serve_json () in
  Printf.eprintf "linting bundled ISAXes...\n%!";
  let linting_json = lint_json () in
  Printf.eprintf "measuring width narrowing...\n%!";
  let narrowing_json = narrow_json ~assert_narrow () in
  Printf.eprintf "comparing RTL simulation engines...\n%!";
  let sim_json = rtl_sim_json ~assert_sim_equal () in
  let b = Buffer.create (64 * 1024) in
  Buffer.add_string b "{\"schema_version\":1,";
  Buffer.add_string b "\"tool\":\"bench/main.exe perf --json\",";
  Buffer.add_string b (sweep_json ^ ",");
  Buffer.add_string b (parallel_json ^ ",");
  Buffer.add_string b (disk_json ^ ",");
  Buffer.add_string b (serving_json ^ ",");
  Buffer.add_string b (linting_json ^ ",");
  Buffer.add_string b (narrowing_json ^ ",");
  Buffer.add_string b (sim_json ^ ",");
  Buffer.add_string b "\"targets\":[";
  List.iteri
    (fun i (isax, core, sp) ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b
        (Printf.sprintf "{\"isax\":\"%s\",\"core\":\"%s\",\"profile\":%s}" isax core
           (Obs.to_json sp)))
    results;
  Buffer.add_string b "]}";
  let oc = open_out_bin json_path in
  Buffer.output_buffer oc b;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (%d targets, %d schema entries)\n" json_path (List.length results)
    (List.length schema);
  match schema_path with
  | None -> ()
  | Some path ->
      let oc = open_out_bin path in
      List.iter (fun l -> output_string oc (l ^ "\n")) schema;
      close_out oc;
      Printf.printf "wrote %s\n" path

(* ---- ablations (DESIGN.md section 5) ---- *)

let ablation () =
  sep "Ablation: ILP vs ASAP scheduler";
  Printf.printf "%-15s %-10s %14s %14s %10s %10s\n" "ISAX" "core" "ILP objective" "ASAP objective"
    "ILP bits" "ASAP bits";
  List.iter
    (fun name ->
      List.iter
        (fun core ->
          let tu = Isax.Registry.compile_by_name name in
          let stats sch =
            let c = Longnail.Flow.compile ~request:(mkrequest ~scheduler:sch ()) core tu in
            List.fold_left
              (fun (obj, bits) (f : Longnail.Flow.compiled_functionality) ->
                let p = f.cf_built.Longnail.Sched_build.problem in
                let st = Array.fold_left ( + ) 0 p.Sched.Problem.start_time in
                ( obj + st + Sched.Problem.total_lifetime p,
                  bits + f.cf_hw.Longnail.Hwgen.pipe_reg_bits ))
              (0, 0) c.Longnail.Flow.funcs
          in
          let iobj, ibits = stats Longnail.Sched_build.Ilp in
          let aobj, abits = stats Longnail.Sched_build.Asap in
          Printf.printf "%-15s %-10s %14d %14d %10d %10d\n" name core.Scaiev.Datasheet.core_name
            iobj aobj ibits abits)
        [ Scaiev.Datasheet.orca; Scaiev.Datasheet.vexriscv ])
    [ "dotprod"; "sparkle"; "sqrt_tightly" ];
  print_endline
    "(the Figure 7 objective = sum of start times + lifetimes; after wiring-op\n\
     \ sinking both schedulers materialize similar register counts)";
  sep "Ablation: uniform vs physical scheduling delays (the paper's future work)";
  Printf.printf "%-15s %-10s %18s %18s\n" "ISAX" "core" "uniform freq" "physical freq";
  List.iter
    (fun name ->
      List.iter
        (fun core ->
          let tu = Isax.Registry.compile_by_name name in
          let freq dm =
            (Asic.Flow.run ~isax_name:name (Longnail.Flow.compile ~request:(mkrequest ?delay:dm ()) core tu))
              .Asic.Flow.freq_delta_pct
          in
          Printf.printf "%-15s %-10s %17.1f%% %17.1f%%\n" name core.Scaiev.Datasheet.core_name
            (freq None)
            (freq (Some Longnail.Delay_model.Physical)))
        [ Scaiev.Datasheet.orca ])
    [ "dotprod"; "sparkle"; "sqrt_tightly" ];
  sep "Ablation: data-hazard handling (Table 4 sub-row)";
  let tu = Isax.Registry.compile_by_name "sqrt_decoupled" in
  List.iter
    (fun core ->
      let w = Asic.Flow.run ~isax_name:"sqrt_d" (Longnail.Flow.compile ~request:(mkrequest ()) core tu) in
      let wo =
        Asic.Flow.run ~isax_name:"sqrt_d"
          (Longnail.Flow.compile ~request:(mkrequest ~hazard_handling:false ()) core tu)
      in
      Printf.printf "%-10s with hazards: +%.0f%%   without: +%.0f%%\n"
        core.Scaiev.Datasheet.core_name w.Asic.Flow.area_overhead_pct wo.Asic.Flow.area_overhead_pct)
    (Scaiev.Core_registry.paper_datasheets ())

(* ---- Section 7 outlook: application-class cores ---- *)

let outlook () =
  sep "Section 7 outlook: application-class cores (CVA5 / CVA6 prototypes)";
  print_endline "The relative cost of SCAIE-V integration decreases as the base core grows:\n";
  Printf.printf "%-15s" "ISAX";
  List.iter
    (fun (c : Scaiev.Datasheet.t) -> Printf.printf "| %-12s" c.core_name)
    (Scaiev.Core_registry.datasheets ~include_outlook:true ());
  print_newline ();
  Printf.printf "%s\n" (String.make 105 '-');
  List.iter
    (fun name ->
      let tu = Isax.Registry.compile_by_name name in
      Printf.printf "%-15s" name;
      List.iter
        (fun core ->
          let r = Asic.Flow.run ~isax_name:name (Longnail.Flow.compile ~request:(mkrequest ()) core tu) in
          Printf.printf "| %+10.1f%% " r.Asic.Flow.area_overhead_pct)
        (Scaiev.Core_registry.datasheets ~include_outlook:true ());
      print_newline ())
    [ "dotprod"; "sparkle"; "sqrt_decoupled"; "zol" ]

(* ---- Section 7 outlook: design-space exploration ---- *)

let dse () =
  sep "Section 7 outlook: design-space exploration (sqrt_tightly on VexRiscv)";
  let tu = Isax.Registry.compile_by_name "sqrt_tightly" in
  let core = Scaiev.Datasheet.vexriscv in
  let measure c =
    let r = Asic.Flow.run ~isax_name:"sqrt_tightly" c in
    (r.Asic.Flow.area_overhead_pct, r.Asic.Flow.achieved_freq_mhz)
  in
  let points = Longnail.Dse.explore ~measure core tu in
  Printf.printf "%-22s %10s %10s %10s %10s %s\n" "configuration" "area" "fmax" "latency"
    "pipe bits" "";
  List.iter
    (fun (p : Longnail.Dse.point) ->
      Printf.printf "%-22s %+9.1f%% %7.0fMHz %10d %10d %s\n" p.dp_label p.dp_area_pct
        p.dp_freq_mhz p.dp_latency p.dp_pipe_bits
        (if p.dp_pareto then "  <- Pareto" else ""))
    points

(* ---- Section 7 outlook: resource-sharing opportunity ---- *)

let sharing () =
  sep "Section 7 outlook: resource-sharing opportunity analysis";
  print_endline
    "Longnail currently builds fully spatial datapaths; the planned sharing";
  print_endline "extension would time-multiplex operators. Estimated savings:\n";
  Printf.printf "%-15s %-10s %12s %14s %14s\n" "ISAX" "core" "ISAX area" "shareable" "saving";
  List.iter
    (fun name ->
      List.iter
        (fun core ->
          let c = Longnail.Flow.compile ~request:(mkrequest ()) core (Isax.Registry.compile_by_name name) in
          let r = Asic.Flow.run ~isax_name:name c in
          let opps = Longnail.Sharing.analyze c in
          let saved = Longnail.Sharing.total_saving opps in
          Printf.printf "%-15s %-10s %10.0fum2 %14d %11.0fum2 (%.0f%%)\n" name
            core.Scaiev.Datasheet.core_name r.Asic.Flow.isax_area_um2
            (List.fold_left (fun a (o : Longnail.Sharing.opportunity) -> a + o.sh_shareable) 0 opps)
            saved
            (100.0 *. saved /. max 1.0 r.Asic.Flow.isax_area_um2))
        [ Scaiev.Datasheet.orca; Scaiev.Datasheet.vexriscv ])
    [ "sparkle"; "sqrt_tightly"; "sqrt_decoupled"; "dotprod" ]

(* ---- extra ISAXes beyond Table 3 ---- *)

let extra () =
  sep "Extra ISAXes (beyond Table 3): wiring / serial-chain / priority patterns";
  Printf.printf "%-10s" "ISAX";
  List.iter
    (fun (c : Scaiev.Datasheet.t) -> Printf.printf "| %-24s" c.core_name)
    (Scaiev.Core_registry.datasheets ());
  print_newline ();
  Printf.printf "%s\n" (String.make 112 '-');
  List.iter
    (fun (e : Isax.Extra.entry) ->
      let tu = Isax.Extra.compile e in
      Printf.printf "%-10s" e.name;
      List.iter
        (fun core ->
          let c = Longnail.Flow.compile ~request:(mkrequest ()) core tu in
          let f = require_func c e.instr in
          let r = Asic.Flow.run ~isax_name:e.name c in
          Printf.printf "| +%4.1f%% %+3.0f%% %-10s" r.Asic.Flow.area_overhead_pct
            r.Asic.Flow.freq_delta_pct
            (Scaiev.Config.mode_to_string f.cf_mode))
        (Scaiev.Core_registry.datasheets ());
      print_newline ())
    Isax.Extra.all

(* ---- Bechamel micro-benchmarks ---- *)

let micro () =
  sep "Micro-benchmarks (Bechamel)";
  let open Bechamel in
  let u32 = Bitvec.unsigned_ty 32 in
  let a = Bitvec.of_int u32 0xDEADBEEF and b = Bitvec.of_int u32 0x12345678 in
  let tu_dotp = Isax.Registry.compile_by_name "dotprod" in
  let dotp = require_tinstr tu_dotp "DOTP" in
  let core = Scaiev.Datasheet.vexriscv in
  let compiled = Longnail.Flow.compile core tu_dotp in
  let f = List.hd compiled.Longnail.Flow.funcs in
  let sim_stim =
    {
      Longnail.Cosim.default_stimulus with
      instr_word = Some (Bitvec.of_int u32 0x0020_80EB);
      rs1 = Some a;
      rs2 = Some b;
    }
  in
  let st = Coredsl.Interp.create tu_dotp in
  let word =
    Coredsl.Interp.encode dotp
      [
        ("rs1", Bitvec.of_int u32 1); ("rs2", Bitvec.of_int u32 2); ("rd", Bitvec.of_int u32 3);
      ]
  in
  let tests =
    [
      Test.make ~name:"bitvec add 32-bit" (Staged.stage (fun () -> ignore (Bitvec.add a b)));
      Test.make ~name:"bitvec mul 32-bit" (Staged.stage (fun () -> ignore (Bitvec.mul a b)));
      Test.make ~name:"coredsl parse+typecheck dotprod"
        (Staged.stage (fun () -> ignore (Isax.Registry.compile_by_name "dotprod")));
      Test.make ~name:"interp exec DOTP"
        (Staged.stage (fun () -> Coredsl.Interp.exec_instr st dotp ~instr_word:word));
      Test.make ~name:"longnail compile dotprod (full flow)"
        (Staged.stage (fun () -> ignore (Longnail.Flow.compile core tu_dotp)));
      Test.make ~name:"rtl cosim DOTP (one instruction)"
        (Staged.stage (fun () -> ignore (Longnail.Cosim.run f sim_stim)));
    ]
  in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
    let raw = Benchmark.all cfg instances test in
    let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  List.iter
    (fun t ->
      let results = benchmark t in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-40s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-40s (no estimate)\n" name)
        results)
    tests

let all_targets =
  [
    ("table1", table1); ("table2", table2); ("table3", table3); ("table4", table4);
    ("fig5", fig5); ("fig6", fig6); ("fig7", fig7); ("fig8", fig8); ("fig9", fig9);
    ("perf", perf); ("ablation", ablation); ("outlook", outlook); ("dse", dse);
    ("sharing", sharing); ("extra", extra); ("micro", micro);
  ]

let usage_error fmt =
  Printf.ksprintf
    (fun m ->
      Printf.eprintf
        "bench: %s\navailable targets: %s\nflags: --json FILE --schema FILE (with the 'perf' target), --repeat N,\n\
        \       --assert-cache-hits, --assert-par-equal, --assert-sim-equal, --assert-dse-warm,\n\
        \       --assert-narrow,\n\
        \       plus the shared knob flags (--jobs N, --scheduler KIND, ...)\n"
        m
        (String.concat " " (List.map fst all_targets));
      exit 2)
    fmt

let main () =
  (* the shared knob/cache/parallelism flags (one table with the CLI —
     Longnail.Knob_flags) are stripped first; the bench's own parser gets
     the leftovers. Flags first, then target names; every name is
     validated before any target runs, and errors exit nonzero (code 2
     for usage) — CI depends on the exit codes. Target names may repeat,
     and `--repeat N` repeats the whole target list: the CI cache gate
     runs `perf --repeat 2 --assert-cache-hits` so the second pass must
     be served from the shared session. *)
  let kf, rest =
    match
      Longnail.Knob_flags.parse Longnail.Knob_flags.default (List.tl (Array.to_list Sys.argv))
    with
    | Ok r -> r
    | Error m -> usage_error "%s" m
  in
  let rec parse
      (targets, json, schema, repeat, assert_hits, assert_par, assert_sim, assert_dse, assert_nw)
      = function
    | [] ->
        ( List.rev targets, json, schema, repeat, assert_hits, assert_par, assert_sim,
          assert_dse, assert_nw )
    | "--json" :: path :: rest ->
        parse
          (targets, Some path, schema, repeat, assert_hits, assert_par, assert_sim, assert_dse, assert_nw)
          rest
    | "--schema" :: path :: rest ->
        parse
          (targets, json, Some path, repeat, assert_hits, assert_par, assert_sim, assert_dse, assert_nw)
          rest
    | "--repeat" :: n :: rest -> (
        match int_of_string_opt n with
        | Some k when k >= 1 ->
            parse
              (targets, json, schema, k, assert_hits, assert_par, assert_sim, assert_dse, assert_nw)
              rest
        | _ -> usage_error "--repeat expects an integer >= 1, got '%s'" n)
    | "--assert-cache-hits" :: rest ->
        parse (targets, json, schema, repeat, true, assert_par, assert_sim, assert_dse, assert_nw) rest
    | "--assert-par-equal" :: rest ->
        parse (targets, json, schema, repeat, assert_hits, true, assert_sim, assert_dse, assert_nw) rest
    | "--assert-sim-equal" :: rest ->
        parse (targets, json, schema, repeat, assert_hits, assert_par, true, assert_dse, assert_nw) rest
    | "--assert-dse-warm" :: rest ->
        parse (targets, json, schema, repeat, assert_hits, assert_par, assert_sim, true, assert_nw) rest
    | "--assert-narrow" :: rest ->
        parse (targets, json, schema, repeat, assert_hits, assert_par, assert_sim, assert_dse, true) rest
    | ("--json" | "--schema" | "--repeat") :: [] -> usage_error "missing flag argument"
    | a :: _ when String.length a >= 2 && String.sub a 0 2 = "--" ->
        usage_error "unknown flag '%s'" a
    | a :: rest ->
        parse
          (a :: targets, json, schema, repeat, assert_hits, assert_par, assert_sim, assert_dse, assert_nw)
          rest
  in
  let names, json, schema, repeat, assert_hits, assert_par_equal, assert_sim_equal,
      assert_dse_warm, assert_narrow =
    parse ([], None, None, 1, false, false, false, false, false) rest
  in
  List.iter
    (fun n -> if not (List.mem_assoc n all_targets) then usage_error "unknown target '%s'" n)
    names;
  if repeat > 1 && names = [] then usage_error "--repeat needs explicit target names";
  let names = List.concat (List.init repeat (fun _ -> names)) in
  (match (json, schema) with
  | (Some _, _ | _, Some _) when not (List.mem "perf" names) ->
      usage_error "--json/--schema require the 'perf' target"
  | _ -> ());
  (match names with
  | [] ->
      (* everything except the (slow) micro benches *)
      List.iter (fun (n, f) -> if n <> "micro" then f ()) all_targets
  | names ->
      List.iter
        (fun n ->
          match (n, json) with
          | "perf", Some json_path ->
              perf_json ~jobs:kf.Longnail.Knob_flags.jobs
                ~verify_each:kf.Longnail.Knob_flags.verify_each ~assert_par_equal
                ~assert_sim_equal ~assert_dse_warm ~assert_narrow ~json_path
                ~schema_path:schema ()
          | _ -> (List.assoc n all_targets) ())
        names);
  if assert_hits then begin
    let hits =
      List.fold_left
        (fun acc (_, (st : Cache.Store.stats)) -> acc + st.hits)
        0
        (Longnail.Flow.session_stats session)
    in
    if hits = 0 then
      Diag.fatalf ~code:"E0901"
        "internal: --assert-cache-hits: the shared session recorded no cache hits";
    Printf.printf "cache-hit assertion: %d hits across the shared session\n" hits
  end

let () =
  try main () with
  | Diag.Fatal ds ->
      Format.eprintf "%a@." Diag.render_all ds;
      exit 1
  | e ->
      Printf.eprintf "bench: internal error: %s\n" (Printexc.to_string e);
      prerr_endline "this is a bug; re-run with OCAMLRUNPARAM=b for a backtrace";
      exit 3
