(* The Longnail command-line driver.

     longnail compile -c vexriscv -t X_DOTP input.core_desc -o out/
         compile a CoreDSL description: writes one SystemVerilog module per
         ISAX functionality plus the SCAIE-V configuration YAML;
         --profile[=json|schema] prints one timed span per Figure-9
         pipeline stage (docs/OBSERVABILITY.md)
     longnail cores
         list the supported host cores and their virtual datasheets
     longnail bundled [-n dotprod]
         list (or print) the bundled benchmark ISAXes
     longnail asic -c vexriscv -n dotprod
         run the ASIC flow model on a bundled ISAX
     longnail serve --socket PATH [--store DIR]
         long-running compile daemon: line-delimited JSON requests over
         a Unix socket against one warm session (docs/SERVE.md)
     longnail client --socket PATH [REQUEST | --ping | --shutdown]
         send one request (or stdin lines) to a serve daemon *)

open Cmdliner

(* How user diagnostics are rendered by the top-level handler: caret-snippet
   text (default) or the stable JSON schema of docs/DIAGNOSTICS.md. Set as a
   side effect of term evaluation so the handler in [main] sees the choice. *)
let error_format = ref `Text

let error_format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "error-format" ] ~docv:"FORMAT"
        ~doc:"How to render diagnostics: 'text' (caret snippets) or 'json'.")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

(* --core parsing, the help text and the unknown-core suggestions all
   come from the core registry, so none of them can drift from the set
   of registered cores. *)
let core_conv =
  let parse s =
    match Scaiev.Core_registry.resolve s with
    | Ok d -> Ok d.Scaiev.Core_registry.datasheet
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun fmt (c : Scaiev.Datasheet.t) -> Format.pp_print_string fmt c.core_name)

let core_arg =
  let doc =
    Printf.sprintf "Host core (%s; outlook: %s)."
      (String.concat ", " (Scaiev.Core_registry.slugs ()))
      (String.concat ", "
         (List.map
            (fun (d : Scaiev.Core_registry.t) -> d.slug)
            (Scaiev.Core_registry.outlook ())))
  in
  Arg.(required & opt (some core_conv) None & info [ "c"; "core" ] ~docv:"CORE" ~doc)

(* ---- the shared knob/cache/parallelism flags ----

   The flag table lives in [Longnail.Knob_flags] (shared with the bench
   harness); here it is bridged generically into cmdliner terms. The
   term evaluates to the (name, value) pairs actually given; [run]
   folds them through [Knob_flags.set], so a malformed value surfaces
   as a cmdliner usage error (exit 2) with the parser's message. *)
let knob_flags_term : (string * string option) list Term.t =
  List.fold_left
    (fun acc (s : Longnail.Knob_flags.spec) ->
      let term =
        match s.arg with
        | None ->
            Term.(
              const (fun b -> if b then Some (s.name, None) else None)
              $ Arg.(value & flag & info [ s.name ] ~doc:s.doc))
        | Some docv ->
            Term.(
              const (Option.map (fun v -> (s.name, Some v)))
              $ Arg.(value & opt (some string) None & info [ s.name ] ~docv ~doc:s.doc))
      in
      Term.(const (fun o l -> match o with Some kv -> kv :: l | None -> l) $ term $ acc))
    (Term.const []) Longnail.Knob_flags.specs

(* Malformed knob values are plain usage errors (exit 2) — except flags
   with a structured diagnostic code ([Knob_flags.error_code]): unknown
   --sim-engine / --emit names raise E0913 with did-you-mean suggestions,
   rendered like any other diagnostic (exit 1). *)
let resolve_knob_flags settings =
  List.fold_left
    (fun acc (name, value) ->
      Result.bind acc (fun t ->
          match Longnail.Knob_flags.set t name value with
          | Ok t -> Ok t
          | Error msg -> (
              match Longnail.Knob_flags.error_code name with
              | Some code -> Diag.fatalf ~code "%s" msg
              | None -> Error msg)))
    (Ok Longnail.Knob_flags.default) settings

(* ---- compile ---- *)

let compile_cmd =
  let input =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"CoreDSL input file.")
  in
  let target =
    Arg.(
      required
      & opt (some string) None
      & info [ "t"; "target" ] ~docv:"NAME" ~doc:"InstructionSet or Core to elaborate.")
  in
  let outdir =
    Arg.(value & opt string "." & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Also write a Graphviz CDFG per functionality.")
  in
  let profile =
    Arg.(
      value
      & opt
          ~vopt:(Some `Pretty)
          (some (enum [ ("pretty", `Pretty); ("json", `Json); ("schema", `Schema) ]))
          None
      & info [ "profile" ] ~docv:"FORMAT"
          ~doc:
            "Profile the pipeline: one span per Figure-9 stage with stage metrics.              FORMAT is 'pretty' (default), 'json' (the span tree on stdout), or              'schema' (the sorted metric-name schema, for the CI contract check).")
  in
  let run efmt input target core outdir knob_settings dot profile =
    error_format := efmt;
    match resolve_knob_flags knob_settings with
    | Error msg -> `Error (true, msg)
    | Ok kf ->
    (* with machine-readable profile output, progress notes move to
       stderr so stdout stays pure JSON / schema lines *)
      let note fmt =
        match profile with
        | Some (`Json | `Schema) -> Printf.eprintf fmt
        | _ -> Printf.printf fmt
      in
      let obs =
        match profile with None -> None | Some _ -> Some (Obs.create ~name:"compile" ())
      in
      let src = read_file input in
      (* one compilation session per invocation: a single compile is
         served cold, but the profile output carries the cache counters
         (always present, so the schema is invocation-independent) *)
      let session = Longnail.Knob_flags.session kf in
      let fe_key =
        Cache.Fp.digest (fun b ->
            Cache.Fp.add_string b input;
            Cache.Fp.add_string b target;
            Cache.Fp.add_string b src)
      in
      let tu =
        Obs.span_opt obs "parse_typecheck" (fun sobs ->
            let tu =
              Longnail.Flow.frontend session ?obs:sobs ~key:fe_key (fun () ->
                  match
                    Coredsl.compile_result ~provider:Isax.Registry.provider ~file:input ~target
                      src
                  with
                  | Ok tu -> tu
                  | Error ds -> raise (Diag.Fatal ds))
            in
            Obs.metric_int_opt sobs "source_bytes" (String.length src);
            Obs.metric_int_opt sobs "n_instructions" (List.length tu.Coredsl.Tast.tinstrs);
            Obs.metric_int_opt sobs "n_always" (List.length tu.Coredsl.Tast.talways);
            tu)
      in
      (* one unified request drives the batch driver even for a single
         target, so the profile schema (parallel_compile / target:* spans)
         is identical at any --jobs value *)
      let request = Longnail.Knob_flags.request ~session ?obs kf in
      (match Longnail.Flow.session_disk session with
      | Some disk ->
          (* disk-backed path: compile (or reload) the portable output
             projection; a warm hit never rebuilds netlists, so the full
             artifacts --dot needs do not exist here *)
          if dot then
            Diag.fatalf ~code:"E0902"
              "--dot needs the full compile artifacts and cannot be combined with --store";
          let o =
            match Longnail.Flow.compile_many_outputs ~request [ (core, tu) ] with
            | [ o ] -> o
            | _ -> Diag.fatalf ~code:"E0901" "internal: compile_many_outputs lost the target"
          in
          if not (Sys.file_exists outdir) then Sys.mkdir outdir 0o755;
          List.iter
            (fun (f : Longnail.Flow.output_func) ->
              let path =
                Filename.concat outdir
                  (f.of_name ^ "." ^ Rtl.Backend.file_ext kf.Longnail.Knob_flags.emit_backend)
              in
              write_file path f.of_sv;
              note "wrote %s (%s, last stage %d)\n" path f.of_mode f.of_max_stage)
            o.o_funcs;
          let cfg_path = Filename.concat outdir "scaiev_config.yaml" in
          write_file cfg_path o.o_yaml;
          note "wrote %s\n" cfg_path;
          let st = Cache.Disk.stats disk in
          note "disk-store: hits=%d misses=%d stores=%d evictions=%d corrupt=%d\n"
            st.Cache.Disk.hits st.misses st.stores st.evictions st.corrupt
      | None ->
          let c =
            match Longnail.Flow.compile_many ~request [ (core, tu) ] with
            | [ c ] -> c
            | _ -> Diag.fatalf ~code:"E0901" "internal: compile_many lost the target"
          in
          if not (Sys.file_exists outdir) then Sys.mkdir outdir 0o755;
          List.iter
            (fun (f : Longnail.Flow.compiled_functionality) ->
              let path =
                Filename.concat outdir
                  (f.cf_name ^ "." ^ Rtl.Backend.file_ext kf.Longnail.Knob_flags.emit_backend)
              in
              write_file path f.cf_sv;
              note "wrote %s (%s, last stage %d)\n" path
                (Scaiev.Config.mode_to_string f.cf_mode)
                f.cf_hw.Longnail.Hwgen.max_stage;
              if dot then begin
                let dpath = Filename.concat outdir (f.cf_name ^ ".dot") in
                let time_of oid =
                  try
                    Some
                      (Longnail.Sched_build.start_time f.cf_built
                         (List.find
                            (fun (o : Ir.Mir.op) -> o.oid = oid)
                            (Ir.Mir.all_ops f.cf_lil)))
                  with _ -> None
                in
                write_file dpath (Ir.Dot.of_graph ~time_of f.cf_lil);
                note "wrote %s\n" dpath
              end)
            c.funcs;
          let cfg_path = Filename.concat outdir "scaiev_config.yaml" in
          write_file cfg_path c.config_yaml;
          note "wrote %s\n" cfg_path);
      Option.iter Obs.finish obs;
      (match (profile, obs) with
      | Some `Pretty, Some s ->
          Obs.validate (Obs.root s);
          print_newline ();
          print_string (Obs.to_pretty (Obs.root s))
      | Some `Json, Some s ->
          Obs.validate (Obs.root s);
          print_endline (Obs.to_json (Obs.root s))
      | Some `Schema, Some s ->
          Obs.validate (Obs.root s);
          List.iter print_endline (Obs.schema (Obs.root s))
      | _ -> ());
    (* Obs.Invalid_metrics deliberately escapes to the internal-error
       handler: non-finite profile metrics are a bug, not a user error *)
    `Ok ()
  in
  let doc = "Compile a CoreDSL description to SystemVerilog + SCAIE-V configuration." in
  Cmd.v (Cmd.info "compile" ~doc)
    Term.(
      ret
        (const run $ error_format_arg $ input $ target $ core_arg $ outdir $ knob_flags_term
       $ dot $ profile))

(* ---- cores ---- *)

let cores_cmd =
  let outlook_arg =
    Arg.(
      value & flag
      & info [ "outlook" ]
          ~doc:"Also list the Section-7 application-class outlook prototypes (cva5, cva6).")
  in
  let names_arg =
    Arg.(
      value & flag
      & info [ "names" ]
          ~doc:
            "Print one registered core slug per line instead of the datasheets (the              scripts/check_core_grid.sh CI gate diffs this against the full listing).")
  in
  let run include_outlook names =
    let cores = Scaiev.Core_registry.all ~include_outlook () in
    if names then
      List.iter (fun (d : Scaiev.Core_registry.t) -> print_endline d.slug) cores
    else
      List.iter
        (fun (d : Scaiev.Core_registry.t) ->
          let c = d.datasheet in
          Printf.printf "# %s\n" d.summary;
          print_endline (Scaiev.Datasheet.to_yaml c);
          Printf.printf "baseline: %.0f um^2, %.0f MHz\n\n" c.base_area_um2 c.base_freq_mhz)
        cores
  in
  let doc = "List the registered host cores and their virtual datasheets." in
  Cmd.v (Cmd.info "cores" ~doc) Term.(const run $ outlook_arg $ names_arg)

(* ---- bundled ---- *)

let bundled_cmd =
  let name_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "n"; "name" ] ~docv:"ISAX" ~doc:"Print the CoreDSL source of one bundled ISAX.")
  in
  let run = function
    | None ->
        List.iter
          (fun (e : Isax.Registry.entry) -> Printf.printf "%-15s %s\n" e.name e.description)
          Isax.Registry.all;
        `Ok ()
    | Some n -> (
        match Isax.Registry.find n with
        | Some e ->
            print_string e.source;
            `Ok ()
        | None -> Diag.fatalf ~code:"E0202" "unknown ISAX '%s'" n)
  in
  let doc = "List the bundled benchmark ISAXes (Table 3) or print one." in
  Cmd.v (Cmd.info "bundled" ~doc) Term.(ret (const run $ name_arg))

(* ---- asic ---- *)

let asic_cmd =
  let name_arg =
    Arg.(
      required & opt (some string) None & info [ "n"; "name" ] ~docv:"ISAX" ~doc:"Bundled ISAX.")
  in
  let run efmt core name =
    error_format := efmt;
    match Isax.Registry.find name with
    | None -> Diag.fatalf ~code:"E0202" "unknown ISAX '%s'" name
    | Some e ->
        let c = Longnail.Flow.compile core (Isax.Registry.compile e) in
        let r = Asic.Flow.run ~isax_name:name c in
        Printf.printf "core          %s\n" r.core_name;
        Printf.printf "base          %.0f um^2 @ %.0f MHz\n" r.base_area_um2 r.base_freq_mhz;
        Printf.printf "ISAX modules  %.0f um^2\n" r.isax_area_um2;
        Printf.printf "adapter       %.0f um^2\n" r.adapter_area_um2;
        Printf.printf "total         %.0f um^2 (+%.0f%%)\n" r.total_area_um2 r.area_overhead_pct;
        Printf.printf "frequency     %.0f MHz (%+.0f%%)\n" r.achieved_freq_mhz r.freq_delta_pct;
        List.iter
          (fun (n, (rep : Asic.Synth.report)) ->
            Printf.printf "  module %-12s %8.0f um^2, critical path %.2f ns, %d cells\n" n
              rep.area_um2 rep.critical_path_ns rep.n_cells)
          r.module_reports;
        `Ok ()
  in
  let doc = "Run the 22nm ASIC flow model on a bundled ISAX for one core." in
  Cmd.v (Cmd.info "asic" ~doc) Term.(ret (const run $ error_format_arg $ core_arg $ name_arg))

(* ---- run: execute an assembly program on an extended core ---- *)

let run_cmd =
  let prog_arg =
    Arg.(
      required & pos 0 (some file) None & info [] ~docv:"PROG.S" ~doc:"Assembly program (RV32IM + .isax directives).")
  in
  let isax_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "n"; "isax" ] ~docv:"ISAX" ~doc:"Bundled ISAX to extend the core with.")
  in
  let engine_arg =
    Arg.(
      value
      & opt (enum [ ("cost", `Cost); ("pipeline", `Pipeline); ("rtl-loop", `Rtl_loop) ]) `Cost
      & info [ "engine" ]
          ~doc:
            "Execution engine: 'cost' (cycle-cost model), 'pipeline' (structural pipeline with              the generated RTL wired in), or 'rtl-loop' (ISAXes through the RTL, base ISA              interpreted).")
  in
  let run efmt core isax engine knob_settings prog =
    error_format := efmt;
    match resolve_knob_flags knob_settings with
    | Error msg -> `Error (true, msg)
    | Ok kf ->
    let entry =
      match isax with
      | Some n -> (
          match Isax.Registry.find n with
          | Some e -> Some e
          | None -> Diag.fatalf ~code:"E0202" "unknown ISAX '%s'" n)
      | None -> None
    in
    (try
      let tu =
        match entry with
        | Some e -> Isax.Registry.compile e
        | None -> Coredsl.compile_rv32im ()
      in
      let c =
        Longnail.Flow.compile
          ~request:(Longnail.Flow.Request.make ~knobs:(Longnail.Knob_flags.knobs kf) ())
          core tu
      in
      (* execution defaults (reset PC, initial stack pointer) come from
         the core's registry descriptor *)
      let sim =
        match Scaiev.Core_registry.of_datasheet core with
        | Some d -> d.Scaiev.Core_registry.sim
        | None -> { Scaiev.Core_registry.reset_pc = 0; sp_init = 0x10000 }
      in
      let enc = Riscv.Machine.isax_encoder tu in
      let words = Riscv.Asm.assemble ~custom:enc (read_file prog) in
      let dump_regs read =
        for r = 10 to 17 do
          Printf.printf "  a%d = %d (0x%08x)\n" (r - 10) (read r) (read r)
        done
      in
      (match engine with
      | `Cost ->
          let m = Riscv.Machine.of_compiled c in
          Riscv.Machine.write_gpr m 2 sim.sp_init;
          Riscv.Machine.load_program m ~base:sim.reset_pc words;
          let cycles = Riscv.Machine.run m in
          Printf.printf "engine: cycle-cost model (%s)\n" core.Scaiev.Datasheet.core_name;
          Printf.printf "cycles: %d, instructions: %d\n" cycles m.Riscv.Machine.instret;
          dump_regs (Riscv.Machine.read_gpr m)
      | `Pipeline ->
          let p = Riscv.Pipeline.create ~engine:kf.Longnail.Knob_flags.sim_engine c in
          Riscv.Pipeline.load_program p ~base:sim.reset_pc words;
          Riscv.Pipeline.write_gpr p 2 sim.sp_init;
          let cycles = Riscv.Pipeline.run p in
          Printf.printf "engine: structural pipeline with ISAX RTL (%s)\n"
            core.Scaiev.Datasheet.core_name;
          Printf.printf "cycles: %d, instructions: %d\n" cycles p.Riscv.Pipeline.instret;
          dump_regs (Riscv.Pipeline.read_gpr p)
      | `Rtl_loop ->
          let rl = Riscv.Rtl_loop.create ~engine:kf.Longnail.Knob_flags.sim_engine c in
          Riscv.Rtl_loop.load_program rl ~base:sim.reset_pc words;
          let instret = Riscv.Rtl_loop.run rl in
          Printf.printf "engine: RTL-in-the-loop (%s)\n" core.Scaiev.Datasheet.core_name;
          Printf.printf "instructions: %d\n" instret;
          dump_regs (Riscv.Rtl_loop.read_gpr rl));
      `Ok ()
     (* no bare [Failure] handler here: anything unexpected must escape to
        the top-level internal-error handler (exit 3), not masquerade as a
        user error *)
     with Riscv.Asm.Asm_error m -> Diag.fatalf ~code:"E0601" "%s" m)
  in
  let doc = "Run an assembly program on an (optionally ISAX-extended) core model." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      ret
        (const run $ error_format_arg $ core_arg $ isax_arg $ engine_arg $ knob_flags_term
       $ prog_arg))

(* ---- report ---- *)

let report_cmd =
  let name_arg =
    Arg.(
      required & opt (some string) None & info [ "n"; "name" ] ~docv:"ISAX" ~doc:"Bundled ISAX.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let run efmt core name out =
    error_format := efmt;
    match Isax.Registry.find name with
    | None -> Diag.fatalf ~code:"E0202" "unknown ISAX '%s'" name
    | Some e ->
        let c = Longnail.Flow.compile core (Isax.Registry.compile e) in
        let md = Asic.Report.generate ~isax_name:name c in
        (match out with
        | Some path ->
            write_file path md;
            Printf.printf "wrote %s\n" path
        | None -> print_string md);
        `Ok ()
  in
  let doc = "Generate a Markdown report for a bundled ISAX on one core." in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(ret (const run $ error_format_arg $ core_arg $ name_arg $ out_arg))

(* ---- lint ---- *)

let lint_cmd =
  let input =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"CoreDSL input file to lint (requires $(b,--target)).")
  in
  let target =
    Arg.(
      value
      & opt (some string) None
      & info [ "t"; "target" ] ~docv:"NAME" ~doc:"InstructionSet or Core to elaborate.")
  in
  let name_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "n"; "name" ] ~docv:"ISAX" ~doc:"Lint one bundled ISAX.")
  in
  let all_bundled =
    Arg.(
      value & flag
      & info [ "all-bundled" ] ~doc:"Lint every bundled ISAX (the CI lint gate runs this).")
  in
  let werror =
    Arg.(
      value & flag
      & info [ "werror" ] ~doc:"Treat warnings as errors: exit 1 when any warning fires.")
  in
  let run efmt input target name all werror =
    error_format := efmt;
    let compile_file file tgt =
      let src = read_file file in
      match
        Coredsl.compile_result ~provider:Isax.Registry.provider ~file ~target:tgt src
      with
      | Ok tu -> tu
      | Error ds -> raise (Diag.Fatal ds)
    in
    let units =
      match (all, name, input) with
      | true, None, None ->
          List.map
            (fun (e : Isax.Registry.entry) -> (e.name, Isax.Registry.compile e))
            Isax.Registry.all
      | false, Some n, None -> (
          match Isax.Registry.find n with
          | Some e -> [ (e.name, Isax.Registry.compile e) ]
          | None -> Diag.fatalf ~code:"E0202" "unknown ISAX '%s'" n)
      | false, None, Some file -> (
          match target with
          | Some tgt -> [ (Filename.basename file, compile_file file tgt) ]
          | None -> Diag.fatalf ~code:"E0902" "lint FILE requires --target NAME")
      | false, None, None ->
          Diag.fatalf ~code:"E0902" "nothing to lint: give FILE --target, --name, or --all-bundled"
      | _ ->
          Diag.fatalf ~code:"E0902"
            "conflicting lint inputs: FILE, --name and --all-bundled are mutually exclusive"
    in
    let results =
      List.map
        (fun (label, tu) ->
          let ds = Analysis.Lint.lint_unit tu in
          (label, if werror then Analysis.Lint.promote ds else ds))
        units
    in
    let total = List.fold_left (fun n (_, ds) -> n + List.length ds) 0 results in
    (match !error_format with
    | `Json -> print_endline (Diag.to_json (List.concat_map snd results))
    | `Text ->
        List.iter
          (fun (label, ds) ->
            Printf.printf "== lint %s: %d warning%s ==\n" label (List.length ds)
              (if List.length ds = 1 then "" else "s");
            if ds <> [] then Format.printf "%a@." Diag.render_all ds)
          results);
    if werror && total > 0 then exit 1;
    `Ok ()
  in
  let doc =
    "Lint CoreDSL descriptions: dataflow-based W1xxx warnings (dead assignments, unused \
     fields/registers, provably-constant conditions, oversized shifts, uninitialized reads, \
     state-free instructions)."
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(
      ret (const run $ error_format_arg $ input $ target $ name_arg $ all_bundled $ werror))

(* ---- diag: diagnostics utilities ---- *)

let diag_cmd =
  let list_codes =
    Arg.(
      value & flag
      & info [ "list-codes" ]
          ~doc:"Print every registered error code with its description (CI diffs this              against docs/ERROR_CODES.txt).")
  in
  let explain =
    Arg.(
      value
      & opt (some string) None
      & info [ "explain" ] ~docv:"CODE"
          ~doc:
            "Print the registry description and notes for one diagnostic code (e.g. \
             E0530). Unknown codes exit 2 with did-you-mean suggestions.")
  in
  let run list explain =
    match explain with
    | Some code -> (
        match Diag.describe code with
        | Some descr ->
            Printf.printf "%s: %s\n" code descr;
            List.iter (Printf.printf "  note: %s\n") (Diag.explain_notes code);
            `Ok ()
        | None ->
            let names = List.map fst Diag.all_codes in
            let hint =
              match Rtl.Choice.suggest ~names code with
              | [] -> ""
              | cs -> Printf.sprintf "; did you mean %s?" (String.concat " or " cs)
            in
            `Error (false, Printf.sprintf "unknown diagnostic code '%s'%s" code hint))
    | None ->
        if list then begin
          List.iter (fun (code, descr) -> Printf.printf "%s %s\n" code descr) Diag.all_codes;
          `Ok ()
        end
        else `Error (true, "nothing to do (try --list-codes or --explain CODE)")
  in
  let doc = "Inspect the diagnostics engine (error-code registry)." in
  Cmd.v (Cmd.info "diag" ~doc) Term.(ret (const run $ list_codes $ explain))

(* ---- serve: the long-running compile daemon ---- *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path of the daemon.")

let serve_cmd =
  let run efmt socket knob_settings =
    error_format := efmt;
    match resolve_knob_flags knob_settings with
    | Error msg -> `Error (true, msg)
    | Ok kf ->
        (* one session for the daemon's whole lifetime: every request
           shares the in-memory stores and (with --store) the disk store *)
        let session = Longnail.Knob_flags.session kf in
        let srv = Server.create ~jobs:kf.Longnail.Knob_flags.jobs ~session ~socket () in
        Printf.eprintf "longnail serve: listening on %s (pid %d)\n%!" socket (Unix.getpid ());
        let stop _ = Server.stop srv in
        (try Sys.set_signal Sys.sigint (Sys.Signal_handle stop) with Invalid_argument _ -> ());
        (try Sys.set_signal Sys.sigterm (Sys.Signal_handle stop) with Invalid_argument _ -> ());
        Server.serve srv;
        Printf.eprintf "longnail serve: %d request(s) served, exiting\n%!"
          (Server.requests_served srv);
        `Ok ()
  in
  let doc =
    "Serve compile/lint/DSE requests over a Unix-domain socket (line-delimited JSON, \
     docs/SERVE.md). The session — and with $(b,--store), the on-disk artifact store — stays \
     warm across requests; $(b,--jobs) sets the default worker-domain count."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(ret (const run $ error_format_arg $ socket_arg $ knob_flags_term))

(* ---- client: talk to a running daemon ---- *)

let client_cmd =
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:"Extra connection attempts (0.1 s apart) while the daemon starts up.")
  in
  let ping_arg = Arg.(value & flag & info [ "ping" ] ~doc:"Send a ping request.") in
  let shutdown_arg =
    Arg.(value & flag & info [ "shutdown" ] ~doc:"Ask the daemon to exit.")
  in
  let req_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"REQUEST"
          ~doc:
            "One JSON request line to send; '-' (or no request) reads request lines from              stdin instead.")
  in
  let run efmt socket retries ping shutdown req =
    error_format := efmt;
    let c = Server.Client.connect ~retries socket in
    Fun.protect ~finally:(fun () -> Server.Client.close c) @@ fun () ->
    (* print every response line; the final done event's ok decides the
       exit code (1 = the daemon reported diagnostics) *)
    let do_one line =
      let events = Server.Client.request c line in
      List.iter (fun j -> print_endline (Server.Json.to_string j)) events;
      match List.rev events with
      | last :: _ -> Server.Json.get_bool (Server.Json.member "ok" last) = Some true
      | [] -> false
    in
    let ok =
      match (ping, shutdown, req) with
      | true, false, None -> do_one {|{"op":"ping"}|}
      | false, true, None -> do_one {|{"op":"shutdown"}|}
      | false, false, Some line when line <> "-" -> do_one line
      | false, false, (None | Some "-") ->
          let rec go acc =
            match input_line stdin with
            | line ->
                let ok = if String.trim line = "" then true else do_one line in
                go (acc && ok)
            | exception End_of_file -> acc
          in
          go true
      | _ ->
          Diag.fatalf ~code:"E0902"
            "conflicting client inputs: --ping, --shutdown and REQUEST are mutually exclusive"
    in
    if ok then `Ok () else exit 1
  in
  let doc =
    "Send requests to a running $(b,longnail serve) daemon and print its JSON responses (one \
     per line)."
  in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(ret (const run $ error_format_arg $ socket_arg $ retries_arg $ ping_arg $ shutdown_arg $ req_arg))

(* ---- entry point ----

   Exit codes: 0 success; 1 user diagnostics (rendered per
   --error-format); 2 command-line usage errors; 3 internal errors. *)

let render_fatal ds =
  match !error_format with
  | `Json -> prerr_endline (Diag.to_json ds)
  | `Text -> Format.eprintf "%a@." Diag.render_all ds

let () =
  let doc = "high-level synthesis of portable RISC-V ISA extensions from CoreDSL" in
  let info = Cmd.info "longnail" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [
        compile_cmd;
        cores_cmd;
        bundled_cmd;
        asic_cmd;
        report_cmd;
        run_cmd;
        lint_cmd;
        diag_cmd;
        serve_cmd;
        client_cmd;
      ]
  in
  match Cmd.eval_value ~catch:false group with
  | Ok (`Ok () | `Version | `Help) -> exit 0
  (* cmdliner reports converter failures as `Parse and unknown options /
     missing arguments / unknown subcommands as `Term; all are usage
     errors (cmdliner already printed the message). Genuine user errors
     raise Diag.Fatal and exit 1 below. *)
  | Error (`Parse | `Term | `Exn) -> exit 2
  | exception Diag.Fatal ds ->
      render_fatal ds;
      exit 1
  | exception Coredsl.Error m ->
      (* legacy string-rendering entry points (bundled ISAX registry) *)
      prerr_endline m;
      exit 1
  | exception e ->
      Printf.eprintf "longnail: internal error: %s\n" (Printexc.to_string e);
      prerr_endline "this is a bug; re-run with OCAMLRUNPARAM=b for a backtrace";
      exit 3
