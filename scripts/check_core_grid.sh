#!/bin/sh
# CI gate: the `longnail cores` listing matches the core registry.
#
# The registry (Scaiev.Core_registry) is the single source of truth for
# which host cores exist; this gate cross-checks the three CLI surfaces
# derived from it against each other so none can silently drift:
#   1. `longnail cores --names`            (slug enumeration)
#   2. `longnail cores` datasheet listing  (core: display names)
#   3. the unknown-core error of --core    (available + did-you-mean list)
# and asserts the fifth core (mriscv) is registered.
#
# Usage: scripts/check_core_grid.sh   (from the repository root)
set -eu

CLI=_build/default/bin/longnail_cli.exe
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

dune build bin/longnail_cli.exe

"$CLI" cores --names > "$TMP/names.txt"
"$CLI" cores --names --outlook > "$TMP/names_outlook.txt"

# the datasheet listing enumerates exactly the registered cores, in
# registration order (display names lowercased = slugs)
"$CLI" cores | sed -n 's/^core: //p' | tr '[:upper:]' '[:lower:]' > "$TMP/listed.txt"
if ! diff -u "$TMP/names.txt" "$TMP/listed.txt"; then
    echo "error: 'longnail cores' datasheets diverge from the registry enumeration" >&2
    exit 1
fi
"$CLI" cores --outlook | sed -n 's/^core: //p' | tr '[:upper:]' '[:lower:]' > "$TMP/listed_outlook.txt"
if ! diff -u "$TMP/names_outlook.txt" "$TMP/listed_outlook.txt"; then
    echo "error: 'longnail cores --outlook' diverges from the registry enumeration" >&2
    exit 1
fi

# outlook strictly extends the default enumeration
if ! head -n "$(wc -l < "$TMP/names.txt")" "$TMP/names_outlook.txt" | diff -u "$TMP/names.txt" -; then
    echo "error: --outlook does not extend the default core enumeration" >&2
    exit 1
fi

# the portability core is registered and the grid is at least five wide
if ! grep -qx mriscv "$TMP/names.txt"; then
    echo "error: the fifth core (mriscv) is missing from the registry" >&2
    exit 1
fi
if [ "$(wc -l < "$TMP/names.txt")" -lt 5 ]; then
    echo "error: expected at least five registered (non-outlook) cores" >&2
    exit 1
fi

# the --core converter's unknown-core message lists every registered
# slug (outlook included): help/suggestions derive from the registry
: > "$TMP/prog.s"
"$CLI" run --core definitely-not-a-core "$TMP/prog.s" 2> "$TMP/err.txt" || true
while read -r slug; do
    if ! grep -q "$slug" "$TMP/err.txt"; then
        echo "error: --core error message does not offer registered core '$slug'" >&2
        cat "$TMP/err.txt" >&2
        exit 1
    fi
done < "$TMP/names_outlook.txt"

echo "core grid matches the registry ($(wc -l < "$TMP/names.txt") cores, +$(( $(wc -l < "$TMP/names_outlook.txt") - $(wc -l < "$TMP/names.txt") )) outlook)"
