#!/bin/sh
# CI gate: the linter's verdict on the bundled ISAXes is a checked-in
# contract.
#
# Runs `longnail lint --all-bundled` and diffs the output against
# docs/LINT_GOLDEN.txt. A new or disappearing warning must come with an
# update to that file (regenerate with
#   longnail lint --all-bundled > docs/LINT_GOLDEN.txt).
# Also asserts the --werror contract: the golden set is nonempty, so the
# same run with --werror must exit 1.
#
# Usage: scripts/check_lint.sh   (from the repository root)
set -eu

CLI=_build/default/bin/longnail_cli.exe
GOLDEN=docs/LINT_GOLDEN.txt
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

dune build bin/longnail_cli.exe

"$CLI" lint --all-bundled > "$TMP/lint.txt"

if ! diff -u "$GOLDEN" "$TMP/lint.txt"; then
    echo "error: lint output diverges from $GOLDEN" >&2
    echo "       (if the change is deliberate, update the checked-in file)" >&2
    exit 1
fi

if ! grep -q 'warning\[W' "$TMP/lint.txt"; then
    echo "error: golden lint run produced no warnings; the --werror gate is vacuous" >&2
    exit 1
fi

if "$CLI" lint --all-bundled --werror > /dev/null; then
    echo "error: lint --werror exited 0 despite a nonempty warning set" >&2
    exit 1
fi

echo "lint output matches $GOLDEN (and --werror exits nonzero)"
