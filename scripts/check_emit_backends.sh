#!/bin/sh
# CI gate: both emission backends cover the full bundled-ISAX x host-core
# grid, and the SystemVerilog backend still produces byte-identical output.
#
# Three checks:
#   1. The pinned SV golden digests (test_cache "paper-core artifacts
#      golden") still match — the emitter refactor into Emit_core must not
#      move a single byte of the SystemVerilog backend's output.
#   2. Every bundled ISAX compiles for every registered core under BOTH
#      `--emit sv` and `--emit v2001`, producing .sv / .v files plus the
#      SCAIE-V configuration.
#   3. The Verilog-2001 output parses with iverilog when one is installed;
#      otherwise it is lexically linted for SystemVerilog-only constructs
#      (always_ff / always_comb / always_latch / logic declarations), the
#      same keyword list V2001_emit.lint enforces.
#
# Usage: scripts/check_emit_backends.sh   (from the repository root)
set -eu

CLI=_build/default/bin/longnail_cli.exe
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

dune build bin/longnail_cli.exe test/test_cache.exe

# 1) byte-identical SystemVerilog: the pinned per-core artifact digests
if ! _build/default/test/test_cache.exe test fingerprints 6 > "$TMP/golden.log" 2>&1; then
    cat "$TMP/golden.log" >&2
    echo "error: the pinned SV golden digests no longer match" >&2
    exit 1
fi

ISAXES="$("$CLI" bundled | awk '{print $1}')"
CORES="$("$CLI" cores --names)"

lint_v2001() {
    # $1: a .v file. Prefer a real parser; fall back to the lexical lint.
    if command -v iverilog > /dev/null 2>&1; then
        iverilog -g2001 -t null "$1"
    elif grep -nwE 'always_ff|always_comb|always_latch|logic' "$1"; then
        echo "error: SystemVerilog-only construct in $1 (above)" >&2
        return 1
    fi
}

grid=0
for isax in $ISAXES; do
    src="$TMP/$isax.core_desc"
    "$CLI" bundled --name "$isax" > "$src"
    # the compile target is the single InstructionSet (or composing Core)
    # the bundled description defines
    target="$(sed -n -e 's/^InstructionSet \([A-Za-z0-9_]*\).*/\1/p' \
                     -e 's/^Core \([A-Za-z0-9_]*\).*/\1/p' "$src" | head -n 1)"
    if [ -z "$target" ]; then
        echo "error: cannot determine compile target of bundled ISAX '$isax'" >&2
        exit 1
    fi
    for core in $CORES; do
        out_sv="$TMP/sv_${isax}_${core}"
        out_v="$TMP/v2001_${isax}_${core}"
        for backend in sv v2001; do
            out="$TMP/${backend}_${isax}_${core}"
            if ! "$CLI" compile -c "$core" -t "$target" --emit "$backend" \
                    -o "$out" "$src" > /dev/null 2> "$TMP/err.log"; then
                cat "$TMP/err.log" >&2
                echo "error: $isax on $core failed under --emit $backend" >&2
                exit 1
            fi
        done
        # each backend produced HDL under its own extension + the config
        [ -n "$(find "$out_sv" -name '*.sv' | head -n 1)" ] || {
            echo "error: --emit sv produced no .sv for $isax on $core" >&2; exit 1; }
        [ -n "$(find "$out_v" -name '*.v' | head -n 1)" ] || {
            echo "error: --emit v2001 produced no .v for $isax on $core" >&2; exit 1; }
        [ -f "$out_v/scaiev_config.yaml" ] || {
            echo "error: --emit v2001 dropped scaiev_config.yaml for $isax on $core" >&2
            exit 1; }
        for v in "$out_v"/*.v; do
            lint_v2001 "$v" || exit 1
        done
        grid=$((grid + 1))
    done
done

if command -v iverilog > /dev/null 2>&1; then
    how="parsed with iverilog -g2001"
else
    how="lexically linted (iverilog not installed)"
fi
echo "emit-backend grid: $grid ISAX x core pairs under both backends; v2001 $how; SV goldens byte-identical"
