#!/bin/sh
# CI gate: the on-disk artifact store works across real processes.
#
# Runs the same compile in two separate CLI processes against one
# --store directory: the first must populate the store (zero hits), the
# second must be served warm from disk (nonzero hits, zero misses) with
# byte-identical SystemVerilog and YAML. Then an artifact is corrupted
# in place and the compile re-run: the store must heal (corrupt entry
# evicted, target recompiled) with identical bytes and exit 0.
#
# Finally a daemon smoke leg: start `longnail serve` against the same
# store, drive a batched compile and a malformed request through
# `longnail client`, and shut it down cleanly.
#
# Usage: scripts/check_disk_cache.sh   (from the repository root)
set -eu

CLI=_build/default/bin/longnail_cli.exe
TMP="$(mktemp -d)"
STORE="$TMP/store"
SOCK="$TMP/longnail.sock"
trap 'rm -rf "$TMP"' EXIT

dune build bin/longnail_cli.exe

"$CLI" bundled -n dotprod > "$TMP/dotprod.core_desc"

compile() {
    out="$1"
    "$CLI" compile -c vexriscv -t X_DOTP "$TMP/dotprod.core_desc" \
        -o "$out" --store "$STORE"
}

# ---- cold process populates, warm process reloads ----

cold_note="$(compile "$TMP/cold")"
echo "$cold_note"
echo "$cold_note" | grep -q 'disk-store: hits=0 misses=1 stores=1' || {
    echo "error: cold process did not populate the store" >&2; exit 1; }

warm_note="$(compile "$TMP/warm")"
echo "$warm_note"
echo "$warm_note" | grep -q 'disk-store: hits=1 misses=0 stores=0' || {
    echo "error: warm process was not served from disk" >&2; exit 1; }

if ! diff -r "$TMP/cold" "$TMP/warm"; then
    echo "error: disk-warm compile changed the artifact bytes" >&2
    exit 1
fi
echo "disk-cache: cross-process warm compile byte-identical"

# ---- corrupt an artifact in place: the store must heal ----

art="$(find "$STORE" -name '*.art' | head -n 1)"
[ -n "$art" ] || { echo "error: no artifact file found in $STORE" >&2; exit 1; }
size="$(wc -c < "$art")"
truncate -s $((size / 2)) "$art"

heal_note="$(compile "$TMP/healed")"
echo "$heal_note"
echo "$heal_note" | grep -q 'corrupt=1' || {
    echo "error: corrupted entry was not detected" >&2; exit 1; }
echo "$heal_note" | grep -q 'stores=1' || {
    echo "error: corrupted entry was not recomputed and re-stored" >&2; exit 1; }
if ! diff -r "$TMP/cold" "$TMP/healed"; then
    echo "error: recovery from corruption changed the artifact bytes" >&2
    exit 1
fi
echo "disk-cache: corrupted entry evicted and healed"

# ---- daemon smoke: serve + batched client compile + clean shutdown ----

"$CLI" serve --socket "$SOCK" --store "$STORE" 2> "$TMP/serve.log" &
SERVE_PID=$!

"$CLI" client --socket "$SOCK" --retries 50 --ping > /dev/null

resp="$("$CLI" client --socket "$SOCK" \
    '{"id":1,"op":"compile","isax":"dotprod","cores":["vexriscv","picorv32"]}')"
targets="$(echo "$resp" | grep -c '"event":"target"')"
[ "$targets" -eq 2 ] || {
    echo "error: expected 2 target events, got $targets" >&2; exit 1; }
echo "$resp" | grep -q '"event":"done","ok":true' || {
    echo "error: batched compile did not finish ok" >&2; exit 1; }

# a malformed request must fail the client (exit 1) but not the daemon
if "$CLI" client --socket "$SOCK" '{"op":' > "$TMP/bad.out" 2>&1; then
    echo "error: malformed request unexpectedly reported ok" >&2
    exit 1
fi
grep -q 'E0910' "$TMP/bad.out" || {
    echo "error: malformed request did not yield an E0910 diagnostic" >&2; exit 1; }
"$CLI" client --socket "$SOCK" --ping > /dev/null || {
    echo "error: daemon died after a malformed request" >&2; exit 1; }

"$CLI" client --socket "$SOCK" --shutdown > /dev/null
wait "$SERVE_PID" || {
    echo "error: serve daemon exited nonzero" >&2; cat "$TMP/serve.log" >&2; exit 1; }
[ ! -e "$SOCK" ] || { echo "error: socket file left behind" >&2; exit 1; }
echo "disk-cache: serve daemon round trip + clean shutdown"

echo "disk-cache gate passed"
