#!/bin/sh
# CI gate: --verify-each is a pure sanitizer.
#
# Compiles a couple of bundled ISAX x core combinations twice — once
# plainly, once with --verify-each — and byte-compares every produced
# artifact (SystemVerilog modules + SCAIE-V YAML). The sanitizer must
# never change the output; it may only reject invalid IR. The full
# ISAX x core grid is covered in-process by test/test_analysis.ml.
#
# Usage: scripts/check_verify_each.sh   (from the repository root)
set -eu

CLI=_build/default/bin/longnail_cli.exe
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

dune build bin/longnail_cli.exe

check() {
    isax="$1" target="$2" core="$3"
    "$CLI" bundled -n "$isax" > "$TMP/$isax.core_desc"
    "$CLI" compile -c "$core" -t "$target" "$TMP/$isax.core_desc" \
        -o "$TMP/$isax-plain" > /dev/null
    "$CLI" compile -c "$core" -t "$target" "$TMP/$isax.core_desc" \
        -o "$TMP/$isax-ve" --verify-each > /dev/null
    if ! diff -r "$TMP/$isax-plain" "$TMP/$isax-ve"; then
        echo "error: --verify-each changed the artifacts of $isax on $core" >&2
        exit 1
    fi
    echo "verify-each: $isax on $core byte-identical"
}

check dotprod X_DOTP vexriscv
check sparkle X_SPARKLE orca
check zol X_ZOL piccolo

echo "--verify-each output is byte-identical"
