#!/bin/sh
# CI gate: --narrow=on is a semantics-preserving optimization.
#
# Three checks over a bundled ISAX x core grid:
#   1. compiling with --narrow=on --verify-each succeeds — every rewrite
#      the narrowing passes make is translation-validated (E0530 aborts
#      the compile on any counterexample) and the pass sanitizer re-checks
#      the IR after each pass;
#   2. an RTL-in-the-loop cosimulation of an ISAX-exercising program
#      prints the identical architectural trace with the knob off and on;
#   3. for an ISAX the analysis provably narrows (sqrt_tightly), the
#      emitted SystemVerilog actually differs between off and on — the
#      knob is not a silent no-op.
#
# Usage: scripts/check_narrow.sh   (from the repository root)
set -eu

CLI=_build/default/bin/longnail_cli.exe
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

dune build bin/longnail_cli.exe

compile_grid() {
    isax="$1" target="$2" core="$3"
    "$CLI" bundled -n "$isax" > "$TMP/$isax.core_desc"
    "$CLI" compile -c "$core" -t "$target" "$TMP/$isax.core_desc" \
        -o "$TMP/$isax-$core-on" --narrow on --verify-each > /dev/null
    "$CLI" compile -c "$core" -t "$target" "$TMP/$isax.core_desc" \
        -o "$TMP/$isax-$core-off" --narrow off > /dev/null
    echo "narrow: $isax on $core compiles translation-validated"
}

compile_grid sqrt_tightly X_SQRT_T vexriscv
compile_grid sqrt_decoupled X_SQRT_D orca
compile_grid chksum X_CHKSUM picorv32
compile_grid dotprod X_DOTP piccolo

# the knob must not be a silent no-op where the analysis proves bits
if diff -r "$TMP/sqrt_tightly-vexriscv-on" "$TMP/sqrt_tightly-vexriscv-off" > /dev/null; then
    echo "error: --narrow=on left sqrt_tightly's artifacts unchanged" >&2
    exit 1
fi
echo "narrow: sqrt_tightly artifacts narrowed"

cosim() {
    isax="$1" core="$2" prog="$3"
    printf '%s\n' "$prog" > "$TMP/$isax.s"
    "$CLI" run -c "$core" -n "$isax" --engine rtl-loop --narrow off \
        "$TMP/$isax.s" > "$TMP/$isax-$core-trace-off.txt"
    "$CLI" run -c "$core" -n "$isax" --engine rtl-loop --narrow on \
        "$TMP/$isax.s" > "$TMP/$isax-$core-trace-on.txt"
    if ! diff -u "$TMP/$isax-$core-trace-off.txt" "$TMP/$isax-$core-trace-on.txt"; then
        echo "error: --narrow=on changed the cosimulation trace of $isax on $core" >&2
        exit 1
    fi
    echo "narrow: $isax on $core cosimulates identically"
}

cosim sqrt_tightly vexriscv 'li a1, 16
.isax SQRT rs1=a1, rd=a2
add a3, a2, a2
ebreak'

cosim chksum picorv32 'li a1, 0x01020304
li a2, 0x50607080
.isax CHKSUM rs1=a1, rs2=a2, rd=a3
add a4, a3, a3
ebreak'

cosim dotprod vexriscv 'li a1, 0x01020304
li a2, 0x05060708
.isax DOTP rs1=a1, rs2=a2, rd=a3
ebreak'

echo "--narrow=on is translation-validated and trace-preserving"
