#!/bin/sh
# CI gate: the profiling metric-name schema is a checked-in contract.
#
# Runs the profile-enabled flow on one bundled ISAX and diffs the emitted
# metric names against bench/PIPELINE_SCHEMA.txt. A metric or stage rename
# must come with an update to that file (regenerate with
#   bench/main.exe perf --json /dev/null --schema bench/PIPELINE_SCHEMA.txt
# or  longnail compile ... --profile=schema > bench/PIPELINE_SCHEMA.txt).
#
# Usage: scripts/check_schema.sh   (from the repository root)
set -eu

CLI=_build/default/bin/longnail_cli.exe
SCHEMA=bench/PIPELINE_SCHEMA.txt
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

dune build bin/longnail_cli.exe

"$CLI" bundled -n dotprod > "$TMP/dotprod.core_desc"
"$CLI" compile -c vexriscv -t X_DOTP -o "$TMP/out" --profile=schema \
    "$TMP/dotprod.core_desc" > "$TMP/schema.txt" 2> /dev/null

if ! diff -u "$SCHEMA" "$TMP/schema.txt"; then
    echo "error: emitted profiling schema diverges from $SCHEMA" >&2
    echo "       (if the rename is deliberate, update the checked-in file)" >&2
    exit 1
fi
echo "profiling schema matches $SCHEMA"
