#!/bin/sh
# CI gate: the diagnostic error-code registry is a checked-in contract.
#
# Diffs the registry reported by `longnail diag --list-codes` against
# docs/ERROR_CODES.txt. Adding, removing or re-describing a code must come
# with an update to that file (regenerate with
#   longnail diag --list-codes > docs/ERROR_CODES.txt).
#
# Usage: scripts/check_error_codes.sh   (from the repository root)
set -eu

CLI=_build/default/bin/longnail_cli.exe
CODES=docs/ERROR_CODES.txt
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

dune build bin/longnail_cli.exe

"$CLI" diag --list-codes > "$TMP/codes.txt"

if ! diff -u "$CODES" "$TMP/codes.txt"; then
    echo "error: diagnostic code registry diverges from $CODES" >&2
    echo "       (if the change is deliberate, update the checked-in file)" >&2
    exit 1
fi
echo "error-code registry matches $CODES"
