(* The Figure 4 ISAX: a long-running fix-point square root, in its
   tightly-coupled and decoupled (spawn-block) variants.

   Demonstrates:
   - the same behavior scheduled beyond the pipeline length on every core,
   - execution-mode selection (tightly-coupled vs decoupled vs FSM),
   - the decoupled variant letting independent instructions overtake
     while dependent ones stall on the scoreboard,
   - ASIC cost of both variants (Table 4 rows).

   Run with:  dune exec examples/sqrt_cordic.exe *)

let () =
  print_endline "CORDIC-style sqrt: 32 shift-subtract iterations, scheduled per core:\n";
  Printf.printf "%-10s | %-16s %-7s | %-16s %-7s\n" "core" "sqrt_tightly" "stages" "sqrt_decoupled"
    "stages";
  List.iter
    (fun core ->
      let stat name instr =
        let c = Longnail.Flow.compile core (Isax.Registry.compile_by_name name) in
        let f = Option.get (Longnail.Flow.find_func c instr) in
        (Scaiev.Config.mode_to_string f.cf_mode, f.cf_hw.Longnail.Hwgen.max_stage)
      in
      let mt, st = stat "sqrt_tightly" "SQRT" in
      let md, sd = stat "sqrt_decoupled" "SQRT_D" in
      Printf.printf "%-10s | %-16s %-7d | %-16s %-7d\n" core.Scaiev.Datasheet.core_name mt st md sd)
    (Scaiev.Core_registry.datasheets ());

  print_endline "\nASIC cost (area overhead / frequency delta):\n";
  Printf.printf "%-10s | %-22s | %-22s\n" "core" "sqrt_tightly" "sqrt_decoupled";
  List.iter
    (fun core ->
      let cost name =
        let c = Longnail.Flow.compile core (Isax.Registry.compile_by_name name) in
        let r = Asic.Flow.run ~isax_name:name c in
        Printf.sprintf "+%.0f%% / %+.0f%%" r.area_overhead_pct r.freq_delta_pct
      in
      Printf.printf "%-10s | %-22s | %-22s\n" core.Scaiev.Datasheet.core_name
        (cost "sqrt_tightly") (cost "sqrt_decoupled"))
    (Scaiev.Core_registry.datasheets ());

  (* decoupled execution: instructions overtake the sqrt unless they
     depend on its result *)
  let tu = Isax.Registry.compile_by_name "sqrt_decoupled" in
  let c = Longnail.Flow.compile Scaiev.Datasheet.vexriscv tu in
  let enc = Riscv.Machine.isax_encoder tu in
  let run prog =
    let m = Riscv.Machine.of_compiled c in
    Riscv.Machine.load_program m (Riscv.Asm.assemble ~custom:enc prog);
    let cycles = Riscv.Machine.run m in
    (cycles, m)
  in
  let independent =
    {|
  li a1, 1764
  .isax SQRT_D rs1=a1, rd=a2
  li t0, 1        # these do not touch a2: they overtake the sqrt
  li t1, 2
  li t2, 3
  li t3, 4
  ebreak
|}
  in
  let dependent =
    {|
  li a1, 1764
  .isax SQRT_D rs1=a1, rd=a2
  add t0, a2, a2  # reads a2: stalls until the decoupled result commits
  li t1, 2
  li t2, 3
  li t3, 4
  ebreak
|}
  in
  let ci, mi = run independent in
  let cd, md = run dependent in
  Printf.printf "\ndecoupled execution on the VexRiscv model (sqrt of 1764 Q16.16):\n";
  Printf.printf "  independent followers: %3d cycles (overtake the sqrt)\n" ci;
  Printf.printf "  dependent follower:    %3d cycles (scoreboard stall)\n" cd;
  Printf.printf "  sqrt result: %d (= 42 << 16: %b)\n"
    (Riscv.Machine.read_gpr mi 12)
    (Riscv.Machine.read_gpr md 12 = 42 * 65536);
  assert (cd > ci)
