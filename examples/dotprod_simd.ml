(* The Figure 1 ISAX: a 4x8-bit SIMD dot product.

   Compiles the dotprod ISAX for all four host cores, co-simulates the
   generated hardware against the reference interpreter, and then runs a
   complete audio-style workload (dot product of two byte arrays) on the
   cycle-level VexRiscv model, with and without the custom instruction.

   Run with:  dune exec examples/dotprod_simd.exe *)

let u32 = Bitvec.unsigned_ty 32
let bv = Bitvec.of_int u32

let () =
  let tu = Isax.Registry.compile_by_name "dotprod" in
  print_endline "Figure 1 ISAX (4x8-bit dot product), compiled for every host core:\n";
  Printf.printf "%-10s %-14s %-10s %-12s %-10s\n" "core" "mode" "stages" "area" "freq";
  (* one request drives the whole batch: the four cores share the
     session's IR artifacts and fan out over worker domains *)
  let request =
    Longnail.Flow.Request.make ~session:(Longnail.Flow.create_session ())
      ~jobs:(min 4 (Par.available_workers ())) ()
  in
  let compiled =
    Longnail.Flow.compile_many ~request
      (List.map (fun core -> (core, tu)) (Scaiev.Core_registry.datasheets ()))
  in
  List.iter
    (fun (c : Longnail.Flow.compiled) ->
      let f = Option.get (Longnail.Flow.find_func c "DOTP") in
      let r = Asic.Flow.run ~isax_name:"dotprod" c in
      Printf.printf "%-10s %-14s %-10d +%-10.0f%% %+.0f%%\n" c.core.Scaiev.Datasheet.core_name
        (Scaiev.Config.mode_to_string f.cf_mode)
        f.cf_hw.Longnail.Hwgen.max_stage r.area_overhead_pct r.freq_delta_pct)
    compiled;

  (* co-simulate the generated module against the interpreter *)
  let core = Scaiev.Datasheet.vexriscv in
  let c =
    List.find
      (fun (c : Longnail.Flow.compiled) ->
        c.core.Scaiev.Datasheet.core_name = core.Scaiev.Datasheet.core_name)
      compiled
  in
  let f = Option.get (Longnail.Flow.find_func c "DOTP") in
  let ti = Option.get (Coredsl.Tast.find_tinstr tu "DOTP") in
  let a = 0x04030201 and b = 0x281E140A in
  let word = Coredsl.Interp.encode ti [ ("rs1", bv 1); ("rs2", bv 2); ("rd", bv 3) ] in
  let st = Coredsl.Interp.create tu in
  Coredsl.Interp.write_regfile st "X" 1 (bv a);
  Coredsl.Interp.write_regfile st "X" 2 (bv b);
  Coredsl.Interp.exec_instr st ti ~instr_word:word;
  let resp =
    Longnail.Cosim.run f
      { Longnail.Cosim.default_stimulus with instr_word = Some word; rs1 = Some (bv a); rs2 = Some (bv b) }
  in
  (match resp.rd_write with
  | Some (data, true) ->
      Printf.printf "\ndotp(%08x, %08x) = %s (interpreter: %s)\n" a b (Bitvec.to_string data)
        (Bitvec.to_string (Coredsl.Interp.read_regfile st "X" 3))
  | _ -> assert false);

  (* a full workload: dot product over byte arrays, 4 lanes per DOTP *)
  let n_words = 64 in
  let prog_isax =
    Printf.sprintf
      {|
  li a0, 0          # accumulator
  li a1, 0x1000     # array A
  li a2, 0x2000     # array B
  li a3, %d         # word count
loop:
  lw a4, 0(a1)
  lw a5, 0(a2)
  .isax DOTP rs1=a4, rs2=a5, rd=a6
  add a0, a0, a6
  addi a1, a1, 4
  addi a2, a2, 4
  addi a3, a3, -1
  bnez a3, loop
  ebreak
|}
      n_words
  in
  let prog_base =
    (* scalar version: unpack bytes with shifts and multiply-accumulate *)
    Printf.sprintf
      {|
  li a0, 0
  li a1, 0x1000
  li a2, 0x2000
  li a3, %d
loop:
  li t2, 4
byte:
  lb t0, 0(a1)
  lb t1, 0(a2)
  # multiply t0*t1 via shift-add (RV32I has no MUL)
  li t3, 0
  li t4, 8
mulbit:
  andi t5, t1, 1
  beqz t5, skip
  add t3, t3, t0
skip:
  slli t0, t0, 1
  srai t1, t1, 1
  addi t4, t4, -1
  bnez t4, mulbit
  add a0, a0, t3
  addi a1, a1, 1
  addi a2, a2, 1
  addi t2, t2, -1
  bnez t2, byte
  addi a3, a3, -1
  bnez a3, loop
  ebreak
|}
      n_words
  in
  let fill m =
    for i = 0 to (4 * n_words) - 1 do
      Coredsl.Interp.write_mem m.Riscv.Machine.st "MEM" (0x1000 + i) 1 (Bitvec.of_int (Bitvec.unsigned_ty 8) ((i mod 7) + 1));
      Coredsl.Interp.write_mem m.Riscv.Machine.st "MEM" (0x2000 + i) 1 (Bitvec.of_int (Bitvec.unsigned_ty 8) ((i mod 5) + 1))
    done
  in
  let run_with prog machine encoder =
    let words = Riscv.Asm.assemble ?custom:encoder prog in
    Riscv.Machine.load_program machine words;
    fill machine;
    let cycles = Riscv.Machine.run ~fuel:10_000_000 machine in
    (cycles, Riscv.Machine.read_gpr machine 10)
  in
  let m_isax = Riscv.Machine.of_compiled c in
  let isax_cycles, isax_sum = run_with prog_isax m_isax (Some (Riscv.Machine.isax_encoder tu)) in
  let m_base = Riscv.Machine.create ~timing:Riscv.Machine.vexriscv_timing (Coredsl.compile_rv32i ()) in
  let base_cycles, base_sum = run_with prog_base m_base None in
  Printf.printf "\n%d-element byte dot product on the VexRiscv model:\n" (4 * n_words);
  Printf.printf "  scalar RV32I (shift-add multiply): %7d cycles (sum %d)\n" base_cycles base_sum;
  Printf.printf "  with the DOTP ISAX:                %7d cycles (sum %d)\n" isax_cycles isax_sum;
  Printf.printf "  speedup: %.1fx\n" (float_of_int base_cycles /. float_of_int isax_cycles);
  assert (base_sum = isax_sum)
