(* Tests for the exact LP/MILP solver substrate. *)

module Rat = Lp.Rat
module Simplex = Lp.Simplex
module Difference = Lp.Difference

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let rat = Rat.of_int

(* ---- Rat ---- *)

let test_rat_basics () =
  let half = Rat.of_ints 1 2 and third = Rat.of_ints 1 3 in
  check_str "1/2+1/3" "5/6" (Rat.to_string (Rat.add half third));
  check_str "1/2*1/3" "1/6" (Rat.to_string (Rat.mul half third));
  check_str "(1/2)/(1/3)" "3/2" (Rat.to_string (Rat.div half third));
  check_bool "1/2 < 2/3" true (Rat.lt half (Rat.of_ints 2 3));
  check_str "normalize" "1/2" (Rat.to_string (Rat.of_ints 17 34));
  check_str "neg den" "-1/2" (Rat.to_string (Rat.of_ints 1 (-2)))

let test_rat_floor_ceil () =
  let f x = Bitvec.Bn.to_int_exn (Rat.floor x) and c x = Bitvec.Bn.to_int_exn (Rat.ceil x) in
  check_int "floor 7/2" 3 (f (Rat.of_ints 7 2));
  check_int "ceil 7/2" 4 (c (Rat.of_ints 7 2));
  check_int "floor -7/2" (-4) (f (Rat.of_ints (-7) 2));
  check_int "ceil -7/2" (-3) (c (Rat.of_ints (-7) 2));
  check_int "floor 4" 4 (f (rat 4));
  check_int "ceil 4" 4 (c (rat 4))

(* ---- Simplex ---- *)

let opt_values = function
  | Simplex.Optimal (x, obj) -> (Array.map Rat.to_float x, Rat.to_float obj)
  | Simplex.Infeasible -> Alcotest.fail "unexpected infeasible"
  | Simplex.Unbounded -> Alcotest.fail "unexpected unbounded"

let test_simplex_basic () =
  (* minimize -x - y  s.t. x + y <= 4, x <= 3, y <= 2  -> x=3,y=1? or 2,2; obj -4 *)
  let obj = [| rat (-1); rat (-1) |] in
  let rows =
    [
      ([| rat 1; rat 1 |], Simplex.Le, rat 4);
      ([| rat 1; rat 0 |], Simplex.Le, rat 3);
      ([| rat 0; rat 1 |], Simplex.Le, rat 2);
    ]
  in
  let _, obj_v = opt_values (Simplex.solve ~obj ~rows) in
  Alcotest.(check (float 1e-9)) "objective" (-4.0) obj_v

let test_simplex_eq_and_ge () =
  (* minimize x + y  s.t. x + y >= 3, x = 1  -> x=1, y=2, obj 3 *)
  let obj = [| rat 1; rat 1 |] in
  let rows =
    [ ([| rat 1; rat 1 |], Simplex.Ge, rat 3); ([| rat 1; rat 0 |], Simplex.Eq, rat 1) ]
  in
  let x, obj_v = opt_values (Simplex.solve ~obj ~rows) in
  Alcotest.(check (float 1e-9)) "x" 1.0 x.(0);
  Alcotest.(check (float 1e-9)) "y" 2.0 x.(1);
  Alcotest.(check (float 1e-9)) "obj" 3.0 obj_v

let test_simplex_infeasible () =
  let obj = [| rat 1 |] in
  let rows =
    [ ([| rat 1 |], Simplex.Ge, rat 5); ([| rat 1 |], Simplex.Le, rat 2) ]
  in
  (match Simplex.solve ~obj ~rows with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible")

let test_simplex_unbounded () =
  let obj = [| rat (-1) |] in
  let rows = [ ([| rat 1 |], Simplex.Ge, rat 0) ] in
  (match Simplex.solve ~obj ~rows with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded")

let test_simplex_degenerate () =
  (* degenerate vertex: Bland's rule must still terminate *)
  let obj = [| rat (-3); rat (-2) |] in
  let rows =
    [
      ([| rat 1; rat 1 |], Simplex.Le, rat 0);
      ([| rat 1; rat 2 |], Simplex.Le, rat 0);
      ([| rat 2; rat 1 |], Simplex.Le, rat 0);
    ]
  in
  let _, obj_v = opt_values (Simplex.solve ~obj ~rows) in
  Alcotest.(check (float 1e-9)) "degenerate optimum" 0.0 obj_v

(* ---- MILP ---- *)

let test_milp_rounding () =
  (* maximize x (= minimize -x) s.t. 2x <= 5, x integer -> x = 2 *)
  let p = Lp.create () in
  let x = Lp.add_int_var p ~name:"x" in
  Lp.add_int_constraint p [ (2, x) ] Lp.Le 5;
  Lp.set_int_objective p [ (-1, x) ];
  (match Lp.solve p with
  | `Optimal sol -> check_int "x" 2 (Lp.value_int sol x)
  | _ -> Alcotest.fail "expected optimal")

let test_milp_knapsack () =
  (* classic small knapsack: values 10,13,7; weights 3,4,2; cap 6.
     best = items 2+3: weight 6, value 20 *)
  let p = Lp.create () in
  let xs =
    List.map (fun i -> Lp.add_int_var p ~upper:1 ~name:(Printf.sprintf "x%d" i)) [ 1; 2; 3 ]
  in
  (match xs with
  | [ x1; x2; x3 ] ->
      Lp.add_int_constraint p [ (3, x1); (4, x2); (2, x3) ] Lp.Le 6;
      Lp.set_int_objective p [ (-10, x1); (-13, x2); (-7, x3) ];
      (match Lp.solve p with
      | `Optimal sol ->
          check_int "obj" (-20) (Rat.to_int_exn sol.Lp.objective);
          check_int "x1" 0 (Lp.value_int sol x1);
          check_int "x2" 1 (Lp.value_int sol x2);
          check_int "x3" 1 (Lp.value_int sol x3)
      | _ -> Alcotest.fail "expected optimal")
  | _ -> assert false)

let test_milp_scheduling_shape () =
  (* A miniature LongnailProblem-shaped ILP: chain a -> b -> c with latencies
     1,1; b constrained to start >= 3 (earliest); minimize sum of start
     times. Expect a=0 (free), b=3, c=4. *)
  let p = Lp.create () in
  let ta = Lp.add_int_var p ~name:"ta" in
  let tb = Lp.add_int_var p ~name:"tb" in
  let tc = Lp.add_int_var p ~name:"tc" in
  Lp.add_int_constraint p [ (1, tb); (-1, ta) ] Lp.Ge 1;
  Lp.add_int_constraint p [ (1, tc); (-1, tb) ] Lp.Ge 1;
  Lp.add_int_constraint p [ (1, tb) ] Lp.Ge 3;
  Lp.set_int_objective p [ (1, ta); (1, tb); (1, tc) ];
  (match Lp.solve p with
  | `Optimal sol ->
      check_int "ta" 0 (Lp.value_int sol ta);
      check_int "tb" 3 (Lp.value_int sol tb);
      check_int "tc" 4 (Lp.value_int sol tc)
  | _ -> Alcotest.fail "expected optimal")

let test_milp_infeasible_window () =
  (* earliest > latest on the same op *)
  let p = Lp.create () in
  let t = Lp.add_int_var p ~name:"t" in
  Lp.add_int_constraint p [ (1, t) ] Lp.Ge 5;
  Lp.add_int_constraint p [ (1, t) ] Lp.Le 4;
  Lp.set_int_objective p [ (1, t) ];
  (match Lp.solve p with
  | `Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible")

let test_lp_to_text () =
  let p = Lp.create () in
  let x = Lp.add_int_var p ~name:"x" ~upper:7 in
  Lp.add_int_constraint p [ (1, x) ] Lp.Ge 2;
  Lp.set_int_objective p [ (1, x) ];
  let txt = Lp.to_text p in
  check_bool "mentions minimize" true (String.length txt > 0 && String.sub txt 0 8 = "minimize");
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "mentions bounds" true (contains "bounds" txt)

(* ---- Difference-constraint solver ---- *)

let test_difference_matches_ilp () =
  let d = Difference.create 3 in
  Difference.add_ge d ~src:0 ~dst:1 ~weight:1;
  Difference.add_ge d ~src:1 ~dst:2 ~weight:1;
  Difference.set_lower d 1 3;
  (match Difference.solve d with
  | Some sol ->
      check_int "t0" 0 sol.(0);
      check_int "t1" 3 sol.(1);
      check_int "t2" 4 sol.(2)
  | None -> Alcotest.fail "expected feasible")

let test_difference_infeasible_upper () =
  let d = Difference.create 2 in
  Difference.add_ge d ~src:0 ~dst:1 ~weight:5;
  Difference.set_upper d 1 3;
  check_bool "infeasible" true (Difference.solve d = None)

let test_difference_positive_cycle () =
  let d = Difference.create 2 in
  Difference.add_ge d ~src:0 ~dst:1 ~weight:1;
  Difference.add_ge d ~src:1 ~dst:0 ~weight:1;
  check_bool "positive cycle infeasible" true (Difference.solve d = None)

(* ---- persistent instances (warm-start API) ---- *)

module I = Lp.Instance

(* a scheduling-shaped integer program: difference rows t_dst - t_src >= w
   over [sp_n] variables, plus per-variable bounds and integer costs. The
   arrays are the mutable data an incremental sweep moves; [build_problem]
   rebuilds a fresh one-shot problem from the current numbers so every
   warm resolve can be checked against a genuinely cold solve. *)
type ispec = {
  sp_n : int;
  sp_deps : (int * int) list;  (* (dst, src), row order *)
  sp_w : int array;  (* weight per row *)
  sp_lower : int array;
  sp_upper : int option array;
  sp_cost : int array;
}

let build_problem spec =
  let p = Lp.create () in
  let vs =
    Array.init spec.sp_n (fun i ->
        Lp.add_int_var p ~lower:spec.sp_lower.(i) ?upper:spec.sp_upper.(i)
          ~name:(Printf.sprintf "t%d" i))
  in
  List.iteri
    (fun r (dst, src) ->
      Lp.add_int_constraint p [ (1, vs.(dst)); (-1, vs.(src)) ] Lp.Ge spec.sp_w.(r))
    spec.sp_deps;
  Lp.set_int_objective p
    (List.filter
       (fun (c, _) -> c <> 0)
       (Array.to_list (Array.mapi (fun i c -> (c, vs.(i))) spec.sp_cost)));
  p

let cold_solve spec = Lp.solve (build_problem spec)

(* push the spec's current numbers into the instance *)
let sync_instance inst spec =
  List.iteri (fun r _ -> I.update_rhs inst r (rat spec.sp_w.(r))) spec.sp_deps;
  Array.iteri
    (fun v _ ->
      I.update_bounds inst v ~lower:(rat spec.sp_lower.(v))
        ~upper:(Option.map rat spec.sp_upper.(v)))
    spec.sp_lower

let outcome_matches name warm cold =
  match (warm, cold) with
  | `Optimal (sa : Lp.solution), `Optimal (sb : Lp.solution) ->
      Rat.equal sa.Lp.objective sb.Lp.objective
      || QCheck.Test.fail_reportf "%s: warm obj %s <> cold obj %s" name
           (Rat.to_string sa.Lp.objective) (Rat.to_string sb.Lp.objective)
  | `Infeasible, `Infeasible | `Unbounded, `Unbounded -> true
  | _ ->
      let show = function
        | `Optimal _ -> "optimal"
        | `Infeasible -> "infeasible"
        | `Unbounded -> "unbounded"
      in
      QCheck.Test.fail_reportf "%s: warm %s, cold %s" name (show warm) (show cold)

let test_instance_classification () =
  let diff =
    { sp_n = 3; sp_deps = [ (1, 0); (2, 1) ]; sp_w = [| 1; 1 |];
      sp_lower = [| 0; 0; 0 |]; sp_upper = [| None; None; None |]; sp_cost = [| 1; 1; 1 |] }
  in
  check_str "pure difference system" "difference"
    (I.klass_name (I.classify (I.create (build_problem diff))));
  let netflow = { diff with sp_cost = [| 1; -2; 1 |]; sp_upper = [| Some 9; Some 9; Some 9 |] } in
  check_str "negative costs go to netflow" "netflow"
    (I.klass_name (I.classify (I.create (build_problem netflow))));
  let p = Lp.create () in
  let x = Lp.add_int_var p ~upper:1 ~name:"x" in
  let y = Lp.add_int_var p ~upper:1 ~name:"y" in
  Lp.add_int_constraint p [ (2, x); (3, y) ] Lp.Le 4;
  Lp.set_int_objective p [ (-1, x); (-1, y) ];
  check_str "general row goes to milp" "milp" (I.klass_name (I.classify (I.create p)))

let test_instance_update_guards () =
  let spec =
    { sp_n = 2; sp_deps = [ (1, 0) ]; sp_w = [| 1 |]; sp_lower = [| 0; 0 |];
      sp_upper = [| None; None |]; sp_cost = [| 1; 1 |] }
  in
  let inst = I.create (build_problem spec) in
  check_int "row count" 1 (I.nrows inst);
  (match I.update_rhs inst 3 Rat.one with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument for rhs row out of range");
  match I.update_bounds inst 7 ~lower:Rat.zero ~upper:None with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument for bounds var out of range"

let test_instance_warm_counters () =
  (* a monotone-tightening chain stays on the fast path and warm-starts
     every resolve after the first *)
  let spec =
    { sp_n = 3; sp_deps = [ (1, 0); (2, 1) ]; sp_w = [| 1; 1 |]; sp_lower = [| 0; 0; 0 |];
      sp_upper = [| None; None; None |]; sp_cost = [| 1; 1; 1 |] }
  in
  let inst = I.create (build_problem spec) in
  ignore (I.resolve inst);
  I.update_rhs inst 0 (rat 2);
  ignore (I.resolve inst);
  I.update_bounds inst 1 ~lower:(rat 4) ~upper:None;
  (match I.resolve inst with
  | `Optimal sol ->
      check_int "t1 pushed to 4" 4 (Rat.to_int_exn sol.Lp.values.(1));
      check_int "t2 follows" 5 (Rat.to_int_exn sol.Lp.values.(2))
  | _ -> Alcotest.fail "expected optimal");
  let st = I.stats inst in
  check_int "three resolves" 3 st.I.is_resolves;
  check_int "all on the fast path" 3 st.I.is_fastpath;
  check_int "one cold start" 1 st.I.is_warm_misses;
  check_int "two warm hits" 2 st.I.is_warm_hits;
  check_bool "no simplex pivots" true (st.I.is_pivots = 0)

let test_instance_milp_warm_basis () =
  (* general rows go through the simplex; the second resolve reuses the
     root basis (dual repair) instead of a fresh Phase 1 *)
  let p = Lp.create () in
  let x = Lp.add_int_var p ~upper:1 ~name:"x" in
  let y = Lp.add_int_var p ~upper:1 ~name:"y" in
  let z = Lp.add_int_var p ~upper:1 ~name:"z" in
  Lp.add_int_constraint p [ (3, x); (4, y); (2, z) ] Lp.Le 6;
  Lp.set_int_objective p [ (-10, x); (-13, y); (-7, z) ];
  let inst = I.create p in
  check_str "milp class" "milp" (I.klass_name (I.classify inst));
  (match I.resolve inst with
  | `Optimal sol -> check_int "knapsack optimum" (-20) (Rat.to_int_exn sol.Lp.objective)
  | _ -> Alcotest.fail "expected optimal");
  I.update_rhs inst 0 (rat 5);
  (match I.resolve inst with
  | `Optimal sol -> check_int "tightened optimum" (-17) (Rat.to_int_exn sol.Lp.objective)
  | _ -> Alcotest.fail "expected optimal");
  let st = I.stats inst in
  check_int "no fast path" 0 st.I.is_fastpath;
  check_bool "second resolve warm" true (st.I.is_warm_hits >= 1);
  check_bool "b&b nodes counted" true (st.I.is_bnb_nodes >= 2)

let test_simplex_budget_exhausted () =
  let obj = [| rat 1; rat 1 |] in
  let rows =
    [ ([| rat 1; rat 1 |], Simplex.Ge, rat 3); ([| rat 1; rat 0 |], Simplex.Eq, rat 1) ]
  in
  match Simplex.solve_ext ~budget:0 ~obj ~rows () with
  | exception Simplex.Iteration_limit b -> check_int "budget carried" 0 b
  | _ -> Alcotest.fail "expected Iteration_limit"

(* ---- properties ---- *)

let arb_rat =
  QCheck.map
    (fun (n, d) -> Rat.of_ints n (if d = 0 then 1 else d))
    (QCheck.pair (QCheck.int_range (-1000) 1000) (QCheck.int_range (-50) 50))

let prop_rat_field =
  QCheck.Test.make ~name:"rat add/mul associativity+distributivity" ~count:300
    (QCheck.triple arb_rat arb_rat arb_rat) (fun (a, b, c) ->
      Rat.equal (Rat.add (Rat.add a b) c) (Rat.add a (Rat.add b c))
      && Rat.equal (Rat.mul (Rat.mul a b) c) (Rat.mul a (Rat.mul b c))
      && Rat.equal (Rat.mul a (Rat.add b c)) (Rat.add (Rat.mul a b) (Rat.mul a c)))

let prop_rat_floor_le =
  QCheck.Test.make ~name:"rat floor <= x < floor+1" ~count:300 arb_rat (fun x ->
      let f = Rat.of_bn (Rat.floor x) in
      Rat.le f x && Rat.lt x (Rat.add f Rat.one))

let prop_difference_minimality =
  (* the difference solver returns the componentwise-minimal solution: every
     solution point satisfies all constraints *)
  QCheck.Test.make ~name:"difference solution satisfies all constraints" ~count:100
    (QCheck.list_of_size (QCheck.Gen.return 10)
       (QCheck.triple (QCheck.int_range 0 5) (QCheck.int_range 0 5) (QCheck.int_range 0 3)))
    (fun edges ->
      let d = Difference.create 6 in
      List.iter (fun (s, t, w) -> if s <> t then Difference.add_ge d ~src:s ~dst:t ~weight:w) edges;
      match Difference.solve d with
      | None -> true (* cycles possible with random edges *)
      | Some sol ->
          List.for_all (fun (s, t, w) -> s = t || sol.(t) - sol.(s) >= w) edges
          && Array.for_all (fun v -> v >= 0) sol)

(* random scheduling-shaped spec: a DAG of difference rows (dst > src, so
   the initial system is always feasible) plus a perturbation chain that
   only tightens — exactly the shape an incremental DSE sweep produces *)
let gen_diff_chain =
  QCheck.Gen.(
    int_range 3 6 >>= fun n ->
    list_size (int_range 2 8)
      (int_range 1 (n - 1) >>= fun dst ->
       int_range 0 (dst - 1) >>= fun src -> return (dst, src))
    >>= fun deps ->
    let ndeps = List.length deps in
    list_size (return ndeps) (int_range 0 4) >>= fun ws ->
    list_size (return n) (int_range 0 3) >>= fun lows ->
    list_size (int_range 1 6)
      (oneof
         [
           (int_range 0 (ndeps - 1) >>= fun r ->
            int_range 1 3 >>= fun d -> return (`Rhs (r, d)));
           (int_range 0 (n - 1) >>= fun v ->
            int_range 1 4 >>= fun d -> return (`Low (v, d)));
         ])
    >>= fun perturbs ->
    return
      ( {
          sp_n = n;
          sp_deps = deps;
          sp_w = Array.of_list ws;
          sp_lower = Array.of_list lows;
          sp_upper = Array.make n None;
          sp_cost = Array.make n 1;
        },
        perturbs ))

let apply_perturb spec = function
  | `Rhs (r, d) -> spec.sp_w.(r) <- spec.sp_w.(r) + d
  | `Low (v, d) -> spec.sp_lower.(v) <- spec.sp_lower.(v) + d
  | `Up (v, u) -> spec.sp_upper.(v) <- u

let run_chain (spec, perturbs) =
  let inst = I.create (build_problem spec) in
  let step name =
    sync_instance inst spec;
    outcome_matches name (I.resolve inst) (cold_solve spec)
  in
  let ok0 = step "initial" in
  ok0
  && List.for_all
       (fun pert ->
         apply_perturb spec pert;
         step "after perturbation")
       perturbs

let prop_instance_warm_equals_cold =
  QCheck.Test.make ~name:"warm resolve == cold solve on tightening chains" ~count:60
    (QCheck.make gen_diff_chain) (fun ((spec, _) as chain) ->
      let inst = I.create (build_problem spec) in
      I.classify inst = I.Difference && run_chain chain)

(* same shape but with negative costs, finite-or-absent uppers and
   loosening updates too: resolves must track the cold solver through
   optimal -> infeasible -> optimal -> unbounded transitions *)
let gen_transition_chain =
  QCheck.Gen.(
    int_range 3 5 >>= fun n ->
    list_size (int_range 2 6)
      (int_range 1 (n - 1) >>= fun dst ->
       int_range 0 (dst - 1) >>= fun src -> return (dst, src))
    >>= fun deps ->
    let ndeps = List.length deps in
    list_size (return ndeps) (int_range 0 3) >>= fun ws ->
    list_size (return n) (int_range (-2) 2) >>= fun costs ->
    list_size (int_range 2 7)
      (oneof
         [
           (int_range 0 (ndeps - 1) >>= fun r ->
            int_range 1 3 >>= fun d -> return (`Rhs (r, d)));
           (int_range 0 (n - 1) >>= fun v ->
            int_range 1 4 >>= fun d -> return (`Low (v, d)));
           (* squeeze an upper bound: often below a lower or a chain,
              flipping the system infeasible *)
           (int_range 0 (n - 1) >>= fun v ->
            int_range 0 2 >>= fun u -> return (`Up (v, Some u)));
           (* release an upper: with a negative cost this can flip the
              system unbounded *)
           (int_range 0 (n - 1) >>= fun v -> return (`Up (v, None)));
         ])
    >>= fun perturbs ->
    return
      ( {
          sp_n = n;
          sp_deps = deps;
          sp_w = Array.of_list ws;
          sp_lower = Array.make n 0;
          sp_upper = Array.make n (Some 8);
          sp_cost = Array.of_list costs;
        },
        perturbs ))

let prop_instance_transitions =
  QCheck.Test.make
    ~name:"resolve tracks cold solver through infeasible/unbounded transitions" ~count:60
    (QCheck.make gen_transition_chain) run_chain

(* general (non-difference) rows: the simplex/B&B path with root-basis
   reuse and incumbent seeding must also agree with cold solves while the
   capacity moves in both directions *)
let gen_milp_chain =
  QCheck.Gen.(
    list_size (return 3) (int_range 1 5) >>= fun ws ->
    list_size (return 3) (int_range 1 10) >>= fun vals ->
    int_range 1 8 >>= fun cap ->
    list_size (int_range 1 6) (int_range (-3) 3) >>= fun deltas ->
    return (ws, vals, cap, deltas))

let prop_instance_milp_warm_equals_cold =
  QCheck.Test.make ~name:"milp warm resolve == cold solve under rhs perturbation" ~count:40
    (QCheck.make gen_milp_chain) (fun (ws, vals, cap, deltas) ->
      let build c =
        let p = Lp.create () in
        let xs =
          List.mapi (fun i _ -> Lp.add_int_var p ~upper:1 ~name:(Printf.sprintf "x%d" i)) ws
        in
        Lp.add_int_constraint p (List.map2 (fun w x -> (w, x)) ws xs) Lp.Le c;
        Lp.set_int_objective p (List.map2 (fun v x -> (-v, x)) vals xs);
        p
      in
      let inst = I.create (build cap) in
      let step c name =
        I.update_rhs inst 0 (rat c);
        outcome_matches name (I.resolve inst) (Lp.solve (build c))
      in
      let ok0 = step cap "initial" in
      let c = ref cap in
      ok0
      && List.for_all
           (fun d ->
             c := !c + d;
             step !c "after capacity move")
           deltas)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_rat_field;
      prop_rat_floor_le;
      prop_difference_minimality;
      prop_instance_warm_equals_cold;
      prop_instance_transitions;
      prop_instance_milp_warm_equals_cold;
    ]

let () =
  Alcotest.run "lp"
    [
      ( "rat",
        [
          Alcotest.test_case "basics" `Quick test_rat_basics;
          Alcotest.test_case "floor/ceil" `Quick test_rat_floor_ceil;
        ] );
      ( "simplex",
        [
          Alcotest.test_case "basic LP" `Quick test_simplex_basic;
          Alcotest.test_case "eq and ge rows" `Quick test_simplex_eq_and_ge;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "degenerate termination" `Quick test_simplex_degenerate;
          Alcotest.test_case "iteration budget" `Quick test_simplex_budget_exhausted;
        ] );
      ( "milp",
        [
          Alcotest.test_case "integer rounding" `Quick test_milp_rounding;
          Alcotest.test_case "knapsack" `Quick test_milp_knapsack;
          Alcotest.test_case "scheduling shape" `Quick test_milp_scheduling_shape;
          Alcotest.test_case "infeasible window" `Quick test_milp_infeasible_window;
          Alcotest.test_case "to_text" `Quick test_lp_to_text;
        ] );
      ( "difference",
        [
          Alcotest.test_case "matches ILP result" `Quick test_difference_matches_ilp;
          Alcotest.test_case "upper bound infeasible" `Quick test_difference_infeasible_upper;
          Alcotest.test_case "positive cycle" `Quick test_difference_positive_cycle;
        ] );
      ( "instance",
        [
          Alcotest.test_case "classification" `Quick test_instance_classification;
          Alcotest.test_case "update guards" `Quick test_instance_update_guards;
          Alcotest.test_case "warm counters" `Quick test_instance_warm_counters;
          Alcotest.test_case "milp warm basis" `Quick test_instance_milp_warm_basis;
        ] );
      ("properties", qcheck_cases);
    ]
