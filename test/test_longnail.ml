(* End-to-end tests for the Longnail flow: every benchmark ISAX compiles
   for every host core, execution modes come out as the paper describes,
   the SCAIE-V configuration matches Figure 8, and — most importantly —
   the generated RTL co-simulates against the CoreDSL reference
   interpreter (the paper's verification methodology, Section 5.3). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let u32 = Bitvec.unsigned_ty 32
let bv v = Bitvec.of_int u32 v

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let compile name core = Longnail.Flow.compile core (Isax.Registry.compile_by_name name)

(* ---- breadth: everything compiles and verifies everywhere ---- *)

let test_all_isaxes_all_cores () =
  List.iter
    (fun (e : Isax.Registry.entry) ->
      let tu = Isax.Registry.compile e in
      List.iter
        (fun core ->
          let c = Longnail.Flow.compile core tu in
          List.iter
            (fun (f : Longnail.Flow.compiled_functionality) ->
              Sched.Problem.verify f.cf_built.Longnail.Sched_build.problem;
              Rtl.Netlist.validate f.cf_hw.Longnail.Hwgen.netlist;
              check_bool
                (Printf.sprintf "%s/%s/%s has sv" e.name core.Scaiev.Datasheet.core_name f.cf_name)
                true
                (String.length f.cf_sv > 0))
            c.Longnail.Flow.funcs)
        (Scaiev.Core_registry.datasheets ()))
    Isax.Registry.all

(* ---- mode selection (Section 4.3 / Table 4 narrative) ---- *)

let mode_of c name =
  (Option.get (Longnail.Flow.find_func c name)).Longnail.Flow.cf_mode

let test_mode_selection () =
  (* sqrt is longer than any pipeline: tightly-coupled without spawn,
     decoupled with spawn, FSM-sequenced (in-pipeline) on PicoRV32 *)
  let c = compile "sqrt_tightly" Scaiev.Datasheet.vexriscv in
  check_bool "sqrt_t vex tightly" true (mode_of c "SQRT" = Scaiev.Config.Tightly_coupled);
  let c = compile "sqrt_decoupled" Scaiev.Datasheet.vexriscv in
  check_bool "sqrt_d vex decoupled" true (mode_of c "SQRT_D" = Scaiev.Config.Decoupled);
  let c = compile "sqrt_tightly" Scaiev.Datasheet.picorv32 in
  check_bool "sqrt_t pico in-pipeline" true (mode_of c "SQRT" = Scaiev.Config.In_pipeline);
  (* short instructions stay in-pipeline *)
  let c = compile "sbox" Scaiev.Datasheet.orca in
  check_bool "sbox orca in-pipeline" true (mode_of c "SUBBYTES" = Scaiev.Config.In_pipeline);
  (* always-blocks use the always mode *)
  let c = compile "zol" Scaiev.Datasheet.vexriscv in
  check_bool "zol always" true (mode_of c "zol" = Scaiev.Config.Always_mode)

let test_sqrt_pipeline_depth () =
  (* the paper reports the sqrt spanning ~10 stages *)
  let c = compile "sqrt_tightly" Scaiev.Datasheet.vexriscv in
  let f = Option.get (Longnail.Flow.find_func c "SQRT") in
  let depth = f.cf_hw.Longnail.Hwgen.max_stage in
  check_bool (Printf.sprintf "depth %d in [8, 16]" depth) true (depth >= 8 && depth <= 16)

(* ---- configuration output (Figure 8) ---- *)

let test_zol_config_yaml () =
  let c = compile "zol" Scaiev.Datasheet.vexriscv in
  let y = c.Longnail.Flow.config_yaml in
  check_bool "requests COUNT" true (contains y "{register: COUNT, width: 32, elements: 1}");
  check_bool "requests START_PC" true (contains y "register: START_PC");
  check_bool "setup instruction" true (contains y "instruction: setup_zol");
  check_bool "always block" true (contains y "always: zol");
  check_bool "WrCOUNT.addr" true (contains y "WrCOUNT.addr");
  check_bool "WrCOUNT.data with valid" true (contains y "WrCOUNT.data");
  check_bool "has valid" true (contains y "has valid: 1");
  check_bool "WrPC in stage 0" true (contains y "{interface: WrPC, stage: 0, has valid: 1");
  (* and it parses back *)
  let cfg = Scaiev.Config.of_yaml y in
  check_int "3 registers" 3 (List.length cfg.Scaiev.Config.regs)

let test_always_entries_stage0 () =
  let c = compile "zol" Scaiev.Datasheet.picorv32 in
  let zol =
    List.find (fun f -> f.Scaiev.Config.fn_kind = `Always) c.Longnail.Flow.config.Scaiev.Config.funcs
  in
  List.iter
    (fun e -> check_int "stage 0" 0 e.Scaiev.Config.se_stage)
    zol.Scaiev.Config.fn_entries

(* ---- co-simulation against the reference interpreter ---- *)

let cosim_one ~isax ~instr ~fields ~setup ~stim_of check =
  List.iter
    (fun core ->
      let tu = Isax.Registry.compile_by_name isax in
      let c = Longnail.Flow.compile core tu in
      let f = Option.get (Longnail.Flow.find_func c instr) in
      let ti = Option.get (Coredsl.Tast.find_tinstr tu instr) in
      let word = Coredsl.Interp.encode ti (List.map (fun (k, v) -> (k, bv v)) fields) in
      (* reference execution *)
      let st = Coredsl.Interp.create tu in
      setup st;
      Coredsl.Interp.exec_instr st ti ~instr_word:word;
      (* rtl execution *)
      let resp = Longnail.Cosim.run f (stim_of word) in
      check core st resp)
    (Scaiev.Core_registry.datasheets ())

let test_cosim_dotprod () =
  let a = 0x04030201 and b = 0x281E140A in
  cosim_one ~isax:"dotprod" ~instr:"DOTP"
    ~fields:[ ("rs1", 1); ("rs2", 2); ("rd", 3) ]
    ~setup:(fun st ->
      Coredsl.Interp.write_regfile st "X" 1 (bv a);
      Coredsl.Interp.write_regfile st "X" 2 (bv b))
    ~stim_of:(fun word ->
      { Longnail.Cosim.default_stimulus with instr_word = Some word; rs1 = Some (bv a); rs2 = Some (bv b) })
    (fun core st resp ->
      let expect = Coredsl.Interp.read_regfile st "X" 3 in
      match resp.Longnail.Cosim.rd_write with
      | Some (data, valid) ->
          check_bool (core.Scaiev.Datasheet.core_name ^ " valid") true valid;
          check_str (core.core_name ^ " dotp value") (Bitvec.to_hex_string expect)
            (Bitvec.to_hex_string data)
      | None -> Alcotest.fail "no rd write")

let test_cosim_sbox () =
  let a = 0x00010253 in
  cosim_one ~isax:"sbox" ~instr:"SUBBYTES"
    ~fields:[ ("rs1", 1); ("rd", 2) ]
    ~setup:(fun st -> Coredsl.Interp.write_regfile st "X" 1 (bv a))
    ~stim_of:(fun word ->
      { Longnail.Cosim.default_stimulus with instr_word = Some word; rs1 = Some (bv a) })
    (fun core st resp ->
      let expect = Coredsl.Interp.read_regfile st "X" 2 in
      match resp.Longnail.Cosim.rd_write with
      | Some (data, true) ->
          check_str (core.Scaiev.Datasheet.core_name ^ " sbox") (Bitvec.to_hex_string expect)
            (Bitvec.to_hex_string data)
      | _ -> Alcotest.fail "no valid rd write")

let test_cosim_sparkle () =
  let a = 0xDEADBEEF and b = 0x12345678 in
  cosim_one ~isax:"sparkle" ~instr:"ALZ_X"
    ~fields:[ ("rs1", 1); ("rs2", 2); ("rd", 3) ]
    ~setup:(fun st ->
      Coredsl.Interp.write_regfile st "X" 1 (bv a);
      Coredsl.Interp.write_regfile st "X" 2 (bv b))
    ~stim_of:(fun word ->
      { Longnail.Cosim.default_stimulus with instr_word = Some word; rs1 = Some (bv a); rs2 = Some (bv b) })
    (fun core st resp ->
      let expect = Coredsl.Interp.read_regfile st "X" 3 in
      match resp.Longnail.Cosim.rd_write with
      | Some (data, true) ->
          check_str (core.Scaiev.Datasheet.core_name ^ " alzette") (Bitvec.to_hex_string expect)
            (Bitvec.to_hex_string data)
      | _ -> Alcotest.fail "no valid rd write")

let test_cosim_sqrt_both () =
  List.iter
    (fun (isax, instr) ->
      List.iter
        (fun x ->
          cosim_one ~isax ~instr
            ~fields:[ ("rs1", 1); ("rd", 2) ]
            ~setup:(fun st -> Coredsl.Interp.write_regfile st "X" 1 (bv x))
            ~stim_of:(fun word ->
              { Longnail.Cosim.default_stimulus with instr_word = Some word; rs1 = Some (bv x) })
            (fun core st resp ->
              let expect = Coredsl.Interp.read_regfile st "X" 2 in
              match resp.Longnail.Cosim.rd_write with
              | Some (data, true) ->
                  check_str
                    (Printf.sprintf "%s %s sqrt(%d)" core.Scaiev.Datasheet.core_name isax x)
                    (Bitvec.to_hex_string expect) (Bitvec.to_hex_string data)
              | _ -> Alcotest.fail "no valid rd write"))
        [ 0; 1; 100; 12345; 0x7FFFFFFF ])
    [ ("sqrt_tightly", "SQRT"); ("sqrt_decoupled", "SQRT_D") ]

let test_cosim_autoinc_store () =
  (* AI_SW drives the memory-write interface with ADDR from the custom reg *)
  cosim_one ~isax:"autoinc" ~instr:"AI_SW"
    ~fields:[ ("rs2", 2) ]
    ~setup:(fun st ->
      Coredsl.Interp.write_reg st "ADDR" (bv 0x200);
      Coredsl.Interp.write_regfile st "X" 2 (bv 0xCAFE))
    ~stim_of:(fun word ->
      {
        Longnail.Cosim.default_stimulus with
        instr_word = Some word;
        rs2 = Some (bv 0xCAFE);
        custreg = (fun _ _ -> bv 0x200);
      })
    (fun core _st resp ->
      (match resp.Longnail.Cosim.mem_write with
      | Some (addr, data, true) ->
          check_int (core.Scaiev.Datasheet.core_name ^ " store addr") 0x200 addr;
          check_str "store data" "0x0000cafe" (Bitvec.to_hex_string data)
      | _ -> Alcotest.fail "no memory write");
      (* the ADDR custom register gets the incremented address *)
      match resp.Longnail.Cosim.custreg_writes with
      | [ w ] ->
          check_str "ADDR+4" "0x00000204" (Bitvec.to_hex_string w.Longnail.Cosim.cw_data);
          check_bool "valid" true w.cw_valid
      | _ -> Alcotest.fail "expected one custreg write")

let test_cosim_zol_always () =
  (* the always-block: at END_PC with COUNT != 0 it redirects the PC *)
  let tu = Isax.Registry.compile_by_name "zol" in
  let core = Scaiev.Datasheet.vexriscv in
  let c = Longnail.Flow.compile core tu in
  let f = Option.get (Longnail.Flow.find_func c "zol") in
  let regs = function
    | "COUNT" -> bv 3
    | "START_PC" -> bv 0x104
    | "END_PC" -> bv 0x10A
    | r -> Alcotest.failf "unexpected reg %s" r
  in
  let stim =
    {
      Longnail.Cosim.default_stimulus with
      pc = Some (bv 0x10A);
      custreg = (fun r _ -> regs r);
    }
  in
  let resp = Longnail.Cosim.run f stim in
  (match resp.Longnail.Cosim.pc_write with
  | Some (data, true) -> check_str "redirect to start" "0x00000104" (Bitvec.to_hex_string data)
  | _ -> Alcotest.fail "expected pc write");
  (match
     List.find_opt (fun w -> w.Longnail.Cosim.cw_reg = "COUNT") resp.Longnail.Cosim.custreg_writes
   with
  | Some w ->
      check_bool "count write valid" true w.cw_valid;
      check_str "count decremented" "0x00000002" (Bitvec.to_hex_string w.cw_data)
  | None -> Alcotest.fail "expected COUNT write");
  (* when the PC does not match, the writes are invalid *)
  let resp2 = Longnail.Cosim.run f { stim with pc = Some (bv 0x100) } in
  (match resp2.Longnail.Cosim.pc_write with
  | Some (_, valid) -> check_bool "no redirect" false valid
  | None -> Alcotest.fail "pc write port must exist")

(* ---- ablations ---- *)

let test_ablation_ilp_vs_asap () =
  (* the ILP scheduler yields no more pipeline register bits than ASAP *)
  let tu = Isax.Registry.compile_by_name "sqrt_tightly" in
  let core = Scaiev.Datasheet.vexriscv in
  let req sch = Longnail.Flow.Request.make ~scheduler:sch () in
  let ilp = Longnail.Flow.compile ~request:(req Longnail.Sched_build.Ilp) core tu in
  let asap = Longnail.Flow.compile ~request:(req Longnail.Sched_build.Asap) core tu in
  let bits c =
    List.fold_left (fun acc f -> acc + f.Longnail.Flow.cf_hw.Longnail.Hwgen.pipe_reg_bits) 0
      c.Longnail.Flow.funcs
  in
  check_bool
    (Printf.sprintf "ilp %d <= asap %d" (bits ilp) (bits asap))
    true
    (bits ilp <= bits asap)

let test_ablation_physical_delays () =
  (* scheduling with the physical model spreads the sparkle datapath over
     more stages than the optimistic uniform model *)
  let tu = Isax.Registry.compile_by_name "sparkle" in
  let core = Scaiev.Datasheet.orca in
  let uni = Longnail.Flow.compile core tu in
  let phys =
    Longnail.Flow.compile
      ~request:(Longnail.Flow.Request.make ~delay:Longnail.Delay_model.Physical ())
      core tu
  in
  let max_stage c =
    List.fold_left (fun acc f -> max acc f.Longnail.Flow.cf_hw.Longnail.Hwgen.max_stage) 0
      c.Longnail.Flow.funcs
  in
  check_bool "physical model uses at least as many stages" true (max_stage phys >= max_stage uni)

let test_infeasible_schedule_reported () =
  (* a PC write fed by a memory load cannot meet ORCA's narrow WrPC window
     if we also forbid the relaxed modes: force infeasibility by shrinking
     the cycle time so the chain cannot fit the window *)
  let src =
    {|
import "RV32I.core_desc"
InstructionSet T extends RV32I {
  instructions {
    LONGJMP {
      encoding: imm[11:0] :: rs1[4:0] :: 3'b111 :: 5'b00000 :: 7'b1111011;
      behavior: {
        unsigned<32> a = MEM[X[rs1]+3:X[rs1]];
        unsigned<32> b = MEM2;
        PC = (unsigned<32>)(a * a * b * b);
      }
    }
  }
  architectural_state { register unsigned<32> MEM2; }
}
|}
  in
  let tu = Coredsl.compile ~target:"T" src in
  (* with a tight cycle time the load + multiply chain needs more stages
     than WrPC's native window allows -> Flow_error *)
  try
    ignore
      (Longnail.Flow.compile
         ~request:
           (Longnail.Flow.Request.make ~cycle_time:0.9
              ~delay:Longnail.Delay_model.Physical ())
         Scaiev.Datasheet.orca tu);
    Alcotest.fail "expected infeasible schedule"
  with Diag.Fatal (d :: _) ->
    let m = d.Diag.message in
    Alcotest.(check string) "stable code" "E0401" d.Diag.code;
    check_bool "mentions the instruction" true
      (let nl = String.length "LONGJMP" in
       let rec go i = i + nl <= String.length m && (String.sub m i nl = "LONGJMP" || go (i + 1)) in
       go 0)

let test_inheritance_cycle_rejected () =
  let src =
    {|
InstructionSet A extends B { }
InstructionSet B extends A { }
|}
  in
  try
    ignore (Coredsl.compile ~target:"A" src);
    Alcotest.fail "expected cycle error"
  with Coredsl.Error m -> check_bool "cycle reported" true (String.length m > 0)

(* ---- outlook features (Section 7) ---- *)

let test_outlook_relative_cost_decreases () =
  (* application-class cores: same ISAX, smaller relative overhead *)
  let tu = Isax.Registry.compile_by_name "sqrt_decoupled" in
  let overhead core =
    (Asic.Flow.run ~isax_name:"sqrt" (Longnail.Flow.compile core tu)).Asic.Flow.area_overhead_pct
  in
  let vex = overhead Scaiev.Datasheet.vexriscv in
  let cva5 = overhead Scaiev.Datasheet.cva5 in
  let cva6 = overhead Scaiev.Datasheet.cva6 in
  check_bool (Printf.sprintf "vex %.1f > cva5 %.1f > cva6 %.1f" vex cva5 cva6) true
    (vex > cva5 && cva5 > cva6)

let test_dse_pareto () =
  (* dotprod is too small to differentiate configurations; sqrt spans
     many stages and produces a real trade-off space *)
  let tu = Isax.Registry.compile_by_name "sqrt_tightly" in
  let core = Scaiev.Datasheet.vexriscv in
  let measure c =
    let r = Asic.Flow.run ~isax_name:"sqrt_tightly" c in
    (r.Asic.Flow.area_overhead_pct, r.Asic.Flow.achieved_freq_mhz)
  in
  let points = Longnail.Dse.explore ~measure core tu in
  check_bool "several points" true (List.length points >= 2);
  let pareto = List.filter (fun (p : Longnail.Dse.point) -> p.dp_pareto) points in
  check_bool "pareto front non-empty" true (pareto <> []);
  (* no pareto point dominates another pareto point *)
  List.iter
    (fun p ->
      List.iter
        (fun q -> check_bool "no domination on the front" false (Longnail.Dse.dominates p q))
        (List.filter (fun q -> q != p) pareto))
    pareto;
  (* every configuration still produces verified hardware *)
  List.iter
    (fun (p : Longnail.Dse.point) -> check_bool "latency positive" true (p.dp_latency >= 1))
    points

let mk_point ?(label = "p") area freq lat =
  {
    Longnail.Dse.dp_label = label;
    dp_scheduler = Longnail.Sched_build.Ilp;
    dp_cycle_factor = 1.0;
    dp_physical = false;
    dp_area_pct = area;
    dp_freq_mhz = freq;
    dp_latency = lat;
    dp_pipe_bits = 0;
    dp_pareto = false;
  }

let test_mark_pareto_ties () =
  (* equal points must not dominate each other: duplicates both stay on
     the front instead of knocking each other out *)
  let a = mk_point ~label:"a" 10.0 100.0 3 in
  let b = mk_point ~label:"b" 10.0 100.0 3 in
  check_bool "equal points don't dominate" false
    (Longnail.Dse.dominates a b || Longnail.Dse.dominates b a);
  let dominated = mk_point ~label:"c" 20.0 90.0 5 in
  match Longnail.Dse.mark_pareto [ a; b; dominated ] with
  | [ a'; b'; c' ] ->
      check_bool "first duplicate on front" true a'.Longnail.Dse.dp_pareto;
      check_bool "second duplicate on front" true b'.Longnail.Dse.dp_pareto;
      check_bool "dominated point off front" false c'.Longnail.Dse.dp_pareto
  | _ -> Alcotest.fail "mark_pareto changed the point count"

(* the DSE sweep through a session: front-end and HLIR/LIL passes run
   exactly once per functionality across the whole knob grid, and a
   repeated sweep replays entirely from cache with identical points *)
let test_dse_session_reuse () =
  let tu = Isax.Registry.compile_by_name "dotprod" in
  let core = Scaiev.Datasheet.vexriscv in
  let measure c =
    let r = Asic.Flow.run ~isax_name:"dotprod" c in
    (r.Asic.Flow.area_overhead_pct, r.Asic.Flow.achieved_freq_mhz)
  in
  let n_funcs = List.length (Longnail.Flow.compile core tu).Longnail.Flow.funcs in
  let ss = Longnail.Dse.sweep_session () in
  let obs_cold = Obs.create ~name:"dse-cold" () in
  let cold =
    Longnail.Dse.explore ~sweep:ss
      ~request:(Longnail.Flow.Request.make ~obs:obs_cold ())
      ~measure core tu
  in
  Obs.finish obs_cold;
  let cold_root = Obs.root obs_cold in
  List.iter
    (fun stage ->
      check_int (stage ^ " runs once per functionality") n_funcs
        (List.length (Obs.find_spans cold_root stage)))
    [ "hlir"; "lil"; "optimize" ];
  check_bool "schedule re-runs per grid point" true
    (List.length (Obs.find_spans cold_root "schedule") > n_funcs);
  let obs_warm = Obs.create ~name:"dse-warm" () in
  let warm =
    Longnail.Dse.explore ~sweep:ss
      ~request:(Longnail.Flow.Request.make ~obs:obs_warm ())
      ~measure core tu
  in
  Obs.finish obs_warm;
  let warm_root = Obs.root obs_warm in
  check_bool "warm sweep returns identical points" true (warm = cold);
  List.iter
    (fun stage ->
      check_int ("warm " ^ stage ^ " never runs") 0
        (List.length (Obs.find_spans warm_root stage)))
    Longnail.Flow.stage_names;
  let stats = Longnail.Flow.session_stats ss.Longnail.Dse.ss_flow in
  check_bool "warm sweep hits the target store" true
    ((List.assoc "target" stats).Cache.Store.hits > 0);
  let mstats = Cache.Store.stats ss.Longnail.Dse.ss_measure in
  check_int "measure served from memo" mstats.Cache.Store.misses mstats.Cache.Store.hits

let test_custom_regfile_indexed () =
  (* multi-element custom register file with a computed index: the
     WrCustReg.addr port carries the index in both directions *)
  let src =
    {|
import "RV32I.core_desc"
InstructionSet X_VACC extends RV32I {
  architectural_state {
    register unsigned<32> ACC[4];
  }
  instructions {
    VACC {
      encoding: 7'd4 :: rs2[4:0] :: rs1[4:0] :: 3'b011 :: 5'b00000 :: 7'b0101011;
      behavior: {
        unsigned<2> idx = X[rs1][1:0];
        ACC[idx] = (unsigned<32>)(ACC[idx] + X[rs2]);
      }
    }
  }
}
|}
  in
  let tu = Coredsl.compile ~target:"X_VACC" src in
  let core = Scaiev.Datasheet.vexriscv in
  let c = Longnail.Flow.compile core tu in
  let f = Option.get (Longnail.Flow.find_func c "VACC") in
  (* the config requests a 4-element register *)
  let req = List.hd c.config.Scaiev.Config.regs in
  check_int "4 elements" 4 req.cr_elems;
  (* co-simulate: ACC[2] = 100, rs1 selects index 2, rs2 adds 42 *)
  let ti = Option.get (Coredsl.Tast.find_tinstr tu "VACC") in
  let word = Coredsl.Interp.encode ti [ ("rs1", bv 1); ("rs2", bv 2) ] in
  let resp =
    Longnail.Cosim.run f
      {
        Longnail.Cosim.default_stimulus with
        instr_word = Some word;
        rs1 = Some (bv 0xABCD0002);
        rs2 = Some (bv 42);
        custreg = (fun _ idx -> if idx = 2 then bv 100 else bv 0);
      }
  in
  (match resp.custreg_writes with
  | [ w ] ->
      check_int "write index 2" 2 (Option.get w.cw_index);
      check_str "accumulated" "0x0000008e" (Bitvec.to_hex_string w.cw_data);
      check_bool "valid" true w.cw_valid
  | _ -> Alcotest.fail "expected one ACC write");
  (* and the read side drove the same index *)
  check_bool "read binding exists" true
    (List.exists
       (fun (b : Longnail.Hwgen.iface_binding) -> b.ib_opname = "lil.read_custreg")
       f.cf_hw.Longnail.Hwgen.bindings)

(* ---- extra ISAXes (wiring / serial-chain / priority patterns) ---- *)

let cosim_extra name input expect_fn =
  let e = Option.get (Isax.Extra.find name) in
  let tu = Isax.Extra.compile e in
  let ti = Option.get (Coredsl.Tast.find_tinstr tu e.instr) in
  List.iter
    (fun core ->
      let c = Longnail.Flow.compile core tu in
      let f = Option.get (Longnail.Flow.find_func c e.instr) in
      let fields =
        List.filter_map
          (fun (fi : Coredsl.Tast.field_info) ->
            match fi.fld_name with
            | "rs1" -> Some ("rs1", bv 1)
            | "rs2" -> Some ("rs2", bv 2)
            | "rd" -> Some ("rd", bv 3)
            | _ -> None)
          ti.fields
      in
      let word = Coredsl.Interp.encode ti fields in
      let rs1, rs2 = input in
      let st = Coredsl.Interp.create tu in
      Coredsl.Interp.write_regfile st "X" 1 (bv rs1);
      Coredsl.Interp.write_regfile st "X" 2 (bv rs2);
      Coredsl.Interp.exec_instr st ti ~instr_word:word;
      let golden = Coredsl.Interp.read_regfile st "X" 3 in
      check_int (name ^ " interp") (expect_fn rs1 rs2) (Bitvec.to_int golden);
      let resp =
        Longnail.Cosim.run f
          {
            Longnail.Cosim.default_stimulus with
            instr_word = Some word;
            rs1 = Some (bv rs1);
            rs2 = Some (bv rs2);
          }
      in
      match resp.rd_write with
      | Some (data, true) ->
          check_bool (name ^ " rtl matches on " ^ core.Scaiev.Datasheet.core_name) true
            (Bitvec.equal_value data golden)
      | _ -> Alcotest.fail "no rd write")
    (Scaiev.Core_registry.datasheets ())

let ref_bitrev v _ =
  let r = ref 0 in
  for i = 0 to 31 do
    if v land (1 lsl i) <> 0 then r := !r lor (1 lsl (31 - i))
  done;
  !r

let ref_crc32b crc byte =
  let c = ref (crc lxor (byte land 0xFF)) in
  for _ = 1 to 8 do
    if !c land 1 = 1 then c := (!c lsr 1) lxor 0xEDB88320 else c := !c lsr 1
  done;
  !c

let ref_clz v _ =
  let rec go i = if i < 0 then 32 else if v land (1 lsl i) <> 0 then 31 - i else go (i - 1) in
  go 31

let test_extra_bitrev () = cosim_extra "bitrev" (0xDEADBEEF, 0) ref_bitrev
let test_extra_crc32 () = cosim_extra "crc32b" (0xFFFFFFFF, 0x31) ref_crc32b

let test_extra_clz () =
  List.iter
    (fun v -> cosim_extra "clz" (v, 0) ref_clz)
    [ 0; 1; 0x80000000; 0x00010000 ]

let test_bitrev_is_pure_wiring () =
  (* the bit-reversal datapath must synthesize to zero-area wiring *)
  let e = Option.get (Isax.Extra.find "bitrev") in
  let tu = Isax.Extra.compile e in
  let c = Longnail.Flow.compile Scaiev.Datasheet.vexriscv tu in
  let f = Option.get (Longnail.Flow.find_func c "BITREV") in
  let rep = Asic.Synth.synthesize f.cf_hw.Longnail.Hwgen.netlist in
  check_bool
    (Printf.sprintf "comb area %.1f tiny" rep.Asic.Synth.comb_area_um2)
    true
    (rep.Asic.Synth.comb_area_um2 < 30.0)

let () =
  Alcotest.run "longnail"
    [
      ("breadth", [ Alcotest.test_case "all ISAXes x all cores" `Slow test_all_isaxes_all_cores ]);
      ( "modes",
        [
          Alcotest.test_case "mode selection" `Quick test_mode_selection;
          Alcotest.test_case "sqrt pipeline depth" `Quick test_sqrt_pipeline_depth;
        ] );
      ( "config",
        [
          Alcotest.test_case "zol yaml (fig 8)" `Quick test_zol_config_yaml;
          Alcotest.test_case "always entries stage 0" `Quick test_always_entries_stage0;
        ] );
      ( "cosim",
        [
          Alcotest.test_case "dotprod" `Quick test_cosim_dotprod;
          Alcotest.test_case "sbox" `Quick test_cosim_sbox;
          Alcotest.test_case "sparkle" `Quick test_cosim_sparkle;
          Alcotest.test_case "sqrt both variants" `Slow test_cosim_sqrt_both;
          Alcotest.test_case "autoinc store" `Quick test_cosim_autoinc_store;
          Alcotest.test_case "zol always-block" `Quick test_cosim_zol_always;
        ] );
      ( "negative",
        [
          Alcotest.test_case "infeasible schedule" `Quick test_infeasible_schedule_reported;
          Alcotest.test_case "inheritance cycle" `Quick test_inheritance_cycle_rejected;
        ] );
      ( "outlook",
        [
          Alcotest.test_case "app-class relative cost" `Quick test_outlook_relative_cost_decreases;
          Alcotest.test_case "dse pareto" `Quick test_dse_pareto;
          Alcotest.test_case "dse pareto ties" `Quick test_mark_pareto_ties;
          Alcotest.test_case "dse session reuse" `Quick test_dse_session_reuse;
          Alcotest.test_case "indexed custom regfile" `Quick test_custom_regfile_indexed;
        ] );
      ( "extra-isaxes",
        [
          Alcotest.test_case "bitrev" `Quick test_extra_bitrev;
          Alcotest.test_case "crc32b" `Quick test_extra_crc32;
          Alcotest.test_case "clz" `Quick test_extra_clz;
          Alcotest.test_case "bitrev pure wiring" `Quick test_bitrev_is_pure_wiring;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "ilp vs asap registers" `Quick test_ablation_ilp_vs_asap;
          Alcotest.test_case "physical delay model" `Quick test_ablation_physical_delays;
        ] );
    ]
