(* Tests for the arbitrary-precision bignum and bit-vector substrate. *)

module Bn = Bitvec.Bn

let check = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- Bn unit tests ---- *)

let test_bn_of_int_roundtrip () =
  List.iter
    (fun i -> check_int "roundtrip" i (Bn.to_int_exn (Bn.of_int i)))
    [ 0; 1; -1; 42; -42; 1 lsl 40; -(1 lsl 40); max_int; min_int + 1 ]

let test_bn_min_int () =
  let m = Bn.of_int min_int in
  check "min_int string" (string_of_int min_int) (Bn.to_string m);
  check_int "min_int back" min_int (Bn.to_int_exn m)

let test_bn_arith_small () =
  for _ = 1 to 500 do
    let a = Random.int 2_000_000 - 1_000_000 and b = Random.int 2_000_000 - 1_000_000 in
    let ba = Bn.of_int a and bb = Bn.of_int b in
    check_int "add" (a + b) (Bn.to_int_exn (Bn.add ba bb));
    check_int "sub" (a - b) (Bn.to_int_exn (Bn.sub ba bb));
    check_int "mul" (a * b) (Bn.to_int_exn (Bn.mul ba bb));
    if b <> 0 then begin
      let q, r = Bn.divmod ba bb in
      (* OCaml's / and mod truncate toward zero, matching Bn.divmod *)
      check_int "div" (a / b) (Bn.to_int_exn q);
      check_int "rem" (a mod b) (Bn.to_int_exn r)
    end
  done

let test_bn_big_mul () =
  (* (2^100 + 1) * (2^100 - 1) = 2^200 - 1 *)
  let p100 = Bn.pow2 100 in
  let a = Bn.add p100 Bn.one and b = Bn.sub p100 Bn.one in
  let expect = Bn.sub (Bn.pow2 200) Bn.one in
  check "big mul" (Bn.to_string expect) (Bn.to_string (Bn.mul a b))

let test_bn_string_roundtrip () =
  List.iter
    (fun s -> check "string roundtrip" s (Bn.to_string (Bn.of_string s)))
    [ "0"; "1"; "-1"; "123456789012345678901234567890"; "-987654321987654321987654321" ]

let test_bn_hex_bin () =
  check "hex" "51966" (Bn.to_string (Bn.of_string "0xcafe"));
  check "bin" "5" (Bn.to_string (Bn.of_string "0b101"));
  check "hex underscore" "255" (Bn.to_string (Bn.of_string "0xf_f"))

let test_bn_shifts () =
  let x = Bn.of_string "123456789123456789" in
  check "shl/shr" (Bn.to_string x) (Bn.to_string (Bn.shift_right (Bn.shift_left x 77) 77));
  check_int "floor shift neg" (-2) (Bn.to_int_exn (Bn.shift_right (Bn.of_int (-3)) 1));
  check_int "floor shift neg exact" (-2) (Bn.to_int_exn (Bn.shift_right (Bn.of_int (-4)) 1))

let test_bn_mod_pow2 () =
  check_int "pos" 5 (Bn.to_int_exn (Bn.mod_pow2 (Bn.of_int 21) 4));
  check_int "neg" 11 (Bn.to_int_exn (Bn.mod_pow2 (Bn.of_int (-21)) 4));
  check_int "zero" 0 (Bn.to_int_exn (Bn.mod_pow2 (Bn.of_int 16) 4));
  check_int "neg multiple" 0 (Bn.to_int_exn (Bn.mod_pow2 (Bn.of_int (-16)) 4))

let test_bn_num_bits () =
  check_int "0" 0 (Bn.num_bits Bn.zero);
  check_int "1" 1 (Bn.num_bits Bn.one);
  check_int "255" 8 (Bn.num_bits (Bn.of_int 255));
  check_int "256" 9 (Bn.num_bits (Bn.of_int 256));
  check_int "2^100" 101 (Bn.num_bits (Bn.pow2 100))

(* ---- Bitvec unit tests ---- *)

open Bitvec

let u w = unsigned_ty w
let s w = signed_ty w

let test_ty_algebra_paper () =
  (* the paper's example: unsigned<5> + signed<4> : signed<7> *)
  Alcotest.(check string) "u5+s4" "signed<7>" (ty_to_string (add_result_ty (u 5) (s 4)));
  Alcotest.(check string) "u4*u4" "unsigned<8>" (ty_to_string (mul_result_ty (u 4) (u 4)));
  Alcotest.(check string) "u8-u8" "signed<9>" (ty_to_string (sub_result_ty (u 8) (u 8)));
  Alcotest.(check string) "s16*s16" "signed<32>" (ty_to_string (mul_result_ty (s 16) (s 16)))

let test_implicit_conv () =
  (* u4 = u5 and u4 = s4 forbidden; u5 = u4 ok; s5 = u4 ok; s4 = u4 not ok *)
  check_bool "u5->u4" false (implicit_conv_ok ~src:(u 5) ~dst:(u 4));
  check_bool "s4->u4" false (implicit_conv_ok ~src:(s 4) ~dst:(u 4));
  check_bool "u4->u5" true (implicit_conv_ok ~src:(u 4) ~dst:(u 5));
  check_bool "u4->s5" true (implicit_conv_ok ~src:(u 4) ~dst:(s 5));
  check_bool "u4->s4" false (implicit_conv_ok ~src:(u 4) ~dst:(s 4));
  check_bool "s4->s4" true (implicit_conv_ok ~src:(s 4) ~dst:(s 4))

let test_arith_never_overflows () =
  let a = of_int (u 4) 15 and b = of_int (s 4) (-8) in
  let r = add a b in
  check_int "15 + -8" 7 (to_int r);
  Alcotest.(check string) "ty" "signed<6>" (ty_to_string (typ r));
  let m = mul a b in
  check_int "15 * -8" (-120) (to_int m);
  Alcotest.(check string) "mul ty" "signed<8>" (ty_to_string (typ m))

let test_wrap_trunc () =
  let x = of_int (u 8) 0xAB in
  check_int "trunc 4" 0xB (to_int (trunc 4 x));
  let y = of_int (s 8) (-1) in
  check_int "reinterpret unsigned" 255 (to_int (reinterpret_sign false y));
  let z = cast (s 4) (of_int (u 8) 0xF) in
  check_int "cast to s4 wraps" (-1) (to_int z)

let test_concat_extract () =
  let hi = of_int (u 4) 0xA and lo = of_int (u 4) 0x5 in
  let c = concat hi lo in
  check_int "concat" 0xA5 (to_int c);
  check_int "extract hi" 0xA (to_int (extract c ~hi:7 ~lo:4));
  check_int "extract lo" 0x5 (to_int (extract c ~hi:3 ~lo:0));
  check_int "bit 7" 1 (to_int (bit c 7));
  check_int "bit 6" 0 (to_int (bit c 6))

let test_concat_negative_pattern () =
  (* concat uses the bit pattern, not the numeric value *)
  let neg1 = of_int (s 4) (-1) in
  let c = concat neg1 (of_int (u 4) 0) in
  check_int "s4(-1) :: u4(0)" 0xF0 (to_int c)

let test_replicate () =
  let x = of_int (u 2) 0b10 in
  check_int "replicate 3" 0b101010 (to_int (replicate x 3));
  check_int "replicate width" 6 (width (replicate x 3))

let test_literals () =
  let l = of_literal "42" in
  check_int "42" 42 (to_int l);
  check_int "42 width" 6 (width l);
  let v = of_verilog_literal ~width:7 ~base:'d' ~digits:"13" in
  check_int "7'd13" 13 (to_int v);
  check_int "7'd13 width" 7 (width v);
  let b = of_verilog_literal ~width:3 ~base:'b' ~digits:"111" in
  check_int "3'b111" 7 (to_int b);
  let h = of_verilog_literal ~width:16 ~base:'h' ~digits:"cafe" in
  check_int "16'hcafe" 0xcafe (to_int h)

let test_printing () =
  check "hex" "0xa5" (to_hex_string (of_int (u 8) 0xA5));
  check "bin" "0b10100101" (to_bin_string (of_int (u 8) 0xA5));
  check "hex neg" "0xff" (to_hex_string (of_int (s 8) (-1)))

let test_division () =
  let a = of_int (s 8) (-7) and b = of_int (s 8) 2 in
  check_int "-7 / 2" (-3) (to_int (div a b));
  check_int "-7 mod 2" (-1) (to_int (rem a b));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (div a (of_int (s 8) 0)))

let test_exact_errors () =
  Alcotest.check_raises "of_int_exact range"
    (Width_error "value 16 does not fit in unsigned<4>") (fun () ->
      ignore (of_int_exact (u 4) 16))

(* widths straddling the native-int word: 62 bits is the last width whose
   unsigned values all fit in an OCaml int; 63/64/65 need the bignum path.
   The compiled RTL engine keys its unboxed fast path on exactly this
   boundary, so wrap/cast/to_int must be exact here. *)
let test_word_boundary_widths () =
  List.iter
    (fun w ->
      let ones = Bn.sub (Bn.pow2 w) Bn.one in
      check (Printf.sprintf "wrap 2^%d" w) "0"
        (Bn.to_string (to_bn (make (u w) (Bn.pow2 w))));
      check "all-ones preserved" (Bn.to_string ones) (Bn.to_string (to_bn (make (u w) ones)));
      (* ones + 2 wraps to 1 *)
      check "add wraps" "1" (Bn.to_string (wrap (u w) (Bn.add ones (Bn.of_int 2))));
      (* 2^(w-1) * 2 wraps to 0 *)
      check "mul wraps" "0" (Bn.to_string (wrap (u w) (Bn.mul (Bn.pow2 (w - 1)) (Bn.of_int 2))));
      (* reinterpreting the all-ones pattern signed gives -1 at every width *)
      check "signed -1" "-1" (Bn.to_string (to_bn (cast (s w) (make (u w) ones))));
      (* the sign bit: signed reinterpretation of 2^(w-1) is -2^(w-1) *)
      check "sign bit"
        (Bn.to_string (Bn.sub Bn.zero (Bn.pow2 (w - 1))))
        (Bn.to_string (to_bn (cast (s w) (make (u w) (Bn.pow2 (w - 1))))));
      (* the native escape hatch: all-ones fits in an int only through 62 *)
      check_bool "to_int_opt at boundary" (w <= 62) (to_int_opt (make (u w) ones) <> None))
    [ 62; 63; 64; 65 ]

(* ---- qcheck properties ---- *)

let arb_small_int = QCheck.int_range (-1_000_000_000) 1_000_000_000

let prop_bn_add_commutes =
  QCheck.Test.make ~name:"bn add commutes" ~count:300 (QCheck.pair arb_small_int arb_small_int)
    (fun (a, b) -> Bn.equal (Bn.add (Bn.of_int a) (Bn.of_int b)) (Bn.add (Bn.of_int b) (Bn.of_int a)))

let prop_bn_mul_distributes =
  QCheck.Test.make ~name:"bn mul distributes over add" ~count:300
    (QCheck.triple arb_small_int arb_small_int arb_small_int) (fun (a, b, c) ->
      let ba = Bn.of_int a and bb = Bn.of_int b and bc = Bn.of_int c in
      Bn.equal (Bn.mul ba (Bn.add bb bc)) (Bn.add (Bn.mul ba bb) (Bn.mul ba bc)))

let prop_bn_divmod_identity =
  QCheck.Test.make ~name:"bn a = b*q + r, |r| < |b|" ~count:300
    (QCheck.pair arb_small_int arb_small_int) (fun (a, b) ->
      QCheck.assume (b <> 0);
      let ba = Bn.of_int a and bb = Bn.of_int b in
      let q, r = Bn.divmod ba bb in
      Bn.equal ba (Bn.add (Bn.mul bb q) r)
      && Bn.compare (Bn.mul r r) (Bn.mul bb bb) < 0)

let prop_bn_shift_roundtrip =
  QCheck.Test.make ~name:"bn shl then shr is identity" ~count:200
    (QCheck.pair arb_small_int (QCheck.int_range 0 80)) (fun (a, k) ->
      let ba = Bn.of_int a in
      Bn.equal ba (Bn.shift_right (Bn.shift_left ba k) k))

let prop_bn_string_roundtrip =
  QCheck.Test.make ~name:"bn decimal string roundtrip" ~count:200 QCheck.int (fun a ->
      Bn.equal (Bn.of_int a) (Bn.of_string (Bn.to_string (Bn.of_int a))))

let arb_ty =
  QCheck.map
    (fun (w, sgn) -> if sgn then signed_ty w else unsigned_ty w)
    (QCheck.pair (QCheck.int_range 1 80) QCheck.bool)

let arb_bv =
  QCheck.map
    (fun (ty, seed) -> of_int ty seed)
    (QCheck.pair arb_ty QCheck.int)

let prop_bv_in_range =
  QCheck.Test.make ~name:"bv values stay in type range" ~count:500 arb_bv (fun x ->
      in_range (typ x) (to_bn x))

let prop_bv_add_matches_int =
  QCheck.Test.make ~name:"bv add matches int semantics" ~count:500 (QCheck.pair arb_bv arb_bv)
    (fun (a, b) ->
      match (to_int_opt a, to_int_opt b) with
      | Some ia, Some ib when abs ia < 1 lsl 30 && abs ib < 1 lsl 30 ->
          to_int (add a b) = ia + ib
      | _ -> QCheck.assume_fail ())

let prop_bv_concat_extract_roundtrip =
  QCheck.Test.make ~name:"bv concat/extract roundtrip" ~count:500 (QCheck.pair arb_bv arb_bv)
    (fun (a, b) ->
      let c = concat a b in
      let a' = extract c ~hi:(width a + width b - 1) ~lo:(width b) in
      let b' = extract c ~hi:(width b - 1) ~lo:0 in
      equal_value a' (reinterpret_sign false (of_bn (unsigned_ty (width a)) (pattern a)))
      && equal_value b' (of_bn (unsigned_ty (width b)) (pattern b)))

let prop_bv_lognot_involution =
  QCheck.Test.make ~name:"bv lognot involution" ~count:500 arb_bv (fun x ->
      equal (lognot (lognot x)) x)

let prop_bv_cast_widen_preserves =
  QCheck.Test.make ~name:"bv widening cast preserves value" ~count:500
    (QCheck.pair arb_bv (QCheck.int_range 1 40)) (fun (x, extra) ->
      let t = { (typ x) with width = width x + extra } in
      equal_value (cast t x) x)

let prop_bv_demorgan =
  QCheck.Test.make ~name:"bv De Morgan" ~count:300 (QCheck.pair arb_bv arb_bv) (fun (a, b) ->
      (* restrict to equal types so widths line up *)
      let b = cast (typ a) b in
      equal (lognot (logand a b)) (logor (lognot a) (lognot b)))

let prop_bv_hex_width =
  QCheck.Test.make ~name:"bv hex string length matches width" ~count:300 arb_bv (fun x ->
      String.length (to_hex_string x) = 2 + ((width x + 3) / 4))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_bn_add_commutes;
      prop_bn_mul_distributes;
      prop_bn_divmod_identity;
      prop_bn_shift_roundtrip;
      prop_bn_string_roundtrip;
      prop_bv_in_range;
      prop_bv_add_matches_int;
      prop_bv_concat_extract_roundtrip;
      prop_bv_lognot_involution;
      prop_bv_cast_widen_preserves;
      prop_bv_demorgan;
      prop_bv_hex_width;
    ]

let () =
  Alcotest.run "bitvec"
    [
      ( "bn",
        [
          Alcotest.test_case "of_int roundtrip" `Quick test_bn_of_int_roundtrip;
          Alcotest.test_case "min_int" `Quick test_bn_min_int;
          Alcotest.test_case "arith vs native" `Quick test_bn_arith_small;
          Alcotest.test_case "big multiplication" `Quick test_bn_big_mul;
          Alcotest.test_case "string roundtrip" `Quick test_bn_string_roundtrip;
          Alcotest.test_case "hex/bin parsing" `Quick test_bn_hex_bin;
          Alcotest.test_case "shifts" `Quick test_bn_shifts;
          Alcotest.test_case "mod_pow2" `Quick test_bn_mod_pow2;
          Alcotest.test_case "num_bits" `Quick test_bn_num_bits;
        ] );
      ( "bitvec",
        [
          Alcotest.test_case "paper type algebra" `Quick test_ty_algebra_paper;
          Alcotest.test_case "implicit conversion rules" `Quick test_implicit_conv;
          Alcotest.test_case "arith never overflows" `Quick test_arith_never_overflows;
          Alcotest.test_case "wrap/trunc" `Quick test_wrap_trunc;
          Alcotest.test_case "concat/extract" `Quick test_concat_extract;
          Alcotest.test_case "concat uses bit pattern" `Quick test_concat_negative_pattern;
          Alcotest.test_case "replicate" `Quick test_replicate;
          Alcotest.test_case "literals" `Quick test_literals;
          Alcotest.test_case "printing" `Quick test_printing;
          Alcotest.test_case "division" `Quick test_division;
          Alcotest.test_case "exact errors" `Quick test_exact_errors;
          Alcotest.test_case "62/63/64/65-bit boundaries" `Quick test_word_boundary_widths;
        ] );
      ("properties", qcheck_cases);
    ]
