(* Tests for the longnail serve daemon (lib/server): the JSON codec,
   the protocol step (Server.handle_line, no sockets), and full
   client/server round trips over a real Unix socket — including the
   docs/SERVE.md guarantees that diagnostics ride the wire and that a
   malformed request or failing compile never kills the daemon. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

module Json = Server.Json

(* ---- the JSON codec ---- *)

let parse_ok s =
  match Json.parse s with
  | Ok j -> j
  | Error m -> Alcotest.failf "parse %S failed: %s" s m

let test_json_roundtrip () =
  let cases =
    [
      "null";
      "true";
      "[1,2,3]";
      {|{"a":1,"b":[true,null,"x"],"c":{"d":-2.5}}|};
      {|"line\nbreak and \"quote\" and \\ backslash"|};
      "[]";
      "{}";
    ]
  in
  List.iter
    (fun s ->
      let j = parse_ok s in
      check_bool s true (parse_ok (Json.to_string j) = j))
    cases

let test_json_numbers () =
  check_bool "int" true (Json.get_int (parse_ok "42") = Some 42);
  check_bool "negative" true (Json.get_int (parse_ok "-7") = Some (-7));
  check_bool "float not int" true (Json.get_int (parse_ok "1.5") = None);
  check_bool "float" true (Json.get_float (parse_ok "1.5") = Some 1.5);
  check_bool "exponent" true (Json.get_float (parse_ok "2e3") = Some 2000.0);
  check_str "int renders bare" "3" (Json.number_to_string 3.0);
  check_bool "int roundtrips through render" true
    (Json.get_int (parse_ok (Json.number_to_string 123.0)) = Some 123)

let test_json_escapes () =
  let j = parse_ok {|"tab\there A end"|} in
  check_bool "escapes decoded" true (Json.get_string j = Some "tab\there A end");
  (* control characters in emitted strings must re-parse *)
  let s = Json.quote "a\nb\tc\"d\\e\x01f" in
  check_bool "re-parses" true (Json.get_string (parse_ok s) = Some "a\nb\tc\"d\\e\x01f")

let test_json_rejects () =
  let bad = [ "{"; "[1,"; {|{"a"}|}; "tru"; ""; "1 2"; {|"unterminated|} ] in
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "parse %S unexpectedly succeeded" s
      | Error _ -> ())
    bad

let test_json_member () =
  let j = parse_ok {|{"op":"ping","n":3}|} in
  check_bool "present" true (Json.get_string (Json.member "op" j) = Some "ping");
  check_bool "absent is Null" true (Json.member "nope" j = Json.Null);
  check_bool "non-object is Null" true (Json.member "x" (Json.Num 1.0) = Json.Null)

(* ---- the protocol step, no sockets ---- *)

let tmpsock () =
  let f = Filename.temp_file "longnail-srv" ".sock" in
  Sys.remove f;
  f

let make_server () =
  Server.create ~session:(Longnail.Flow.create_session ()) ~socket:(tmpsock ()) ()

let one_line = function
  | [ l ] -> parse_ok l
  | ls -> Alcotest.failf "expected one response line, got %d" (List.length ls)

let diag_codes j =
  match Json.member "diagnostics" (Json.member "diag" j) with
  | Json.Arr ds ->
      List.filter_map (fun d -> Json.get_string (Json.member "code" d)) ds
  | _ -> []

let test_ping () =
  let srv = make_server () in
  let j = one_line (Server.handle_line srv {|{"id":9,"op":"ping"}|}) in
  check_bool "ok" true (Json.get_bool (Json.member "ok" j) = Some true);
  check_bool "id echoed" true (Json.get_int (Json.member "id" j) = Some 9);
  check_bool "protocol" true
    (Json.get_int (Json.member "protocol" j) = Some Server.protocol_version)

let test_malformed_is_e0910 () =
  let srv = make_server () in
  let j = one_line (Server.handle_line srv {|{"op":|}) in
  check_bool "not ok" true (Json.get_bool (Json.member "ok" j) = Some false);
  Alcotest.(check (list string)) "E0910" [ "E0910" ] (diag_codes j);
  (* the daemon still answers afterwards: per-request isolation *)
  let j = one_line (Server.handle_line srv {|{"op":"ping"}|}) in
  check_bool "still alive" true (Json.get_bool (Json.member "ok" j) = Some true)

let test_unknown_op_and_missing_fields () =
  let srv = make_server () in
  let expect_e0910 line =
    let j = one_line (Server.handle_line srv line) in
    Alcotest.(check (list string)) line [ "E0910" ] (diag_codes j)
  in
  expect_e0910 {|{"op":"frobnicate"}|};
  expect_e0910 {|{"op":"compile"}|};
  expect_e0910 {|{"op":"compile","isax":"no-such-isax","core":"vexriscv"}|};
  expect_e0910 {|{"op":"compile","isax":"dotprod","core":"vexriscv","jobs":0}|};
  expect_e0910 {|{"op":"compile","isax":"dotprod","core":"vexriscv","knobs":{"scheduler":"bogus"}}|};
  (* cache/store control is daemon-side configuration *)
  expect_e0910 {|{"op":"compile","isax":"dotprod","core":"vexriscv","knobs":{"store":"/tmp/x"}}|}

(* unknown core names are not generic malformed-request failures: they
   get the dedicated E0912 code, and the message carries the registry's
   available-core list plus the same did-you-mean suggestions as the
   CLI's --core converter *)
let test_unknown_core_is_e0912 () =
  let srv = make_server () in
  let diag_messages j =
    match Json.member "diagnostics" (Json.member "diag" j) with
    | Json.Arr ds ->
        List.filter_map (fun d -> Json.get_string (Json.member "message" d)) ds
    | _ -> []
  in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun line ->
      let j = one_line (Server.handle_line srv line) in
      check_bool "not ok" true (Json.get_bool (Json.member "ok" j) = Some false);
      Alcotest.(check (list string)) line [ "E0912" ] (diag_codes j);
      let msg = String.concat " " (diag_messages j) in
      List.iter
        (fun slug -> check_bool (line ^ " lists " ^ slug) true (contains msg slug))
        (Scaiev.Core_registry.slugs ~include_outlook:true ()))
    [
      {|{"op":"compile","isax":"dotprod","core":"made-up-core"}|};
      {|{"op":"compile","isax":"dotprod","cores":["vexriscv","made-up-core"]}|};
      {|{"op":"dse","isax":"dotprod","core":"made-up-core"}|};
    ];
  (* a near-miss typo gets a did-you-mean pointing at the right slug *)
  let j =
    one_line (Server.handle_line srv {|{"op":"compile","isax":"dotprod","core":"mricsv"}|})
  in
  Alcotest.(check (list string)) "typo is E0912" [ "E0912" ] (diag_codes j);
  let msg = String.concat " " (diag_messages j) in
  check_bool "suggests mriscv" true (contains msg "did you mean 'mriscv'?");
  (* the daemon still answers afterwards: per-request isolation *)
  let j = one_line (Server.handle_line srv {|{"op":"ping"}|}) in
  check_bool "still alive" true (Json.get_bool (Json.member "ok" j) = Some true)

let test_compile_inline () =
  let srv = make_server () in
  let lines =
    Server.handle_line srv
      {|{"id":1,"op":"compile","isax":"dotprod","cores":["vexriscv","picorv32"]}|}
  in
  check_int "two targets + done" 3 (List.length lines);
  let js = List.map parse_ok lines in
  let targets, dones =
    List.partition
      (fun j -> Json.get_string (Json.member "event" j) = Some "target")
      js
  in
  check_int "one done" 1 (List.length dones);
  check_bool "done ok" true
    (Json.get_bool (Json.member "ok" (List.hd dones)) = Some true);
  List.iter
    (fun j ->
      check_bool "target ok" true (Json.get_bool (Json.member "ok" j) = Some true);
      (match Json.get_list (Json.member "funcs" j) with
      | Some (f :: _) ->
          let sv = Json.get_string (Json.member "sv" f) in
          check_bool "sv is a module" true
            (match sv with Some s -> String.length s > 0 | None -> false)
      | _ -> Alcotest.fail "target event carries no funcs");
      check_bool "yaml present" true
        (match Json.get_string (Json.member "yaml" j) with
        | Some y -> String.length y > 0
        | None -> false))
    targets

let test_compile_diagnostics_on_wire () =
  let srv = make_server () in
  (* a type error in inline text: the diagnostics (code + span) must
     come back in the done event, not kill the daemon *)
  let e = Isax.Registry.find_exn "dotprod" in
  let req =
    Json.to_string
      (Json.Obj
         [
           ("id", Json.Num 5.0);
           ("op", Json.Str "compile");
           ("text", Json.Str e.Isax.Registry.source);
           ("target", Json.Str "NoSuchInstructionSet");
           ("core", Json.Str "vexriscv");
         ])
  in
  let j = one_line (Server.handle_line srv req) in
  check_bool "not ok" true (Json.get_bool (Json.member "ok" j) = Some false);
  check_bool "carries E0202" true (List.mem "E0202" (diag_codes j));
  (* and a healthy compile still works afterwards *)
  let lines =
    Server.handle_line srv {|{"id":6,"op":"compile","isax":"dotprod","core":"vexriscv"}|}
  in
  check_int "healthy after failure" 2 (List.length lines)

let test_lint_op () =
  let srv = make_server () in
  let j = one_line (Server.handle_line srv {|{"op":"lint","isax":"dotprod"}|}) in
  check_bool "ok" true (Json.get_bool (Json.member "ok" j) = Some true);
  check_bool "findings counted" true (Json.get_int (Json.member "findings" j) <> None)

(* ---- client/server round trips over a real socket ---- *)

let with_daemon f =
  let socket = tmpsock () in
  let srv = Server.create ~session:(Longnail.Flow.create_session ()) ~socket () in
  let daemon = Domain.spawn (fun () -> Server.serve srv) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Domain.join daemon)
    (fun () -> f socket srv);
  check_bool "socket file removed on exit" false (Sys.file_exists socket)

let done_of events =
  match List.rev events with
  | last :: _ when Json.get_string (Json.member "event" last) = Some "done" -> last
  | _ -> Alcotest.fail "response did not end with a done event"

let test_socket_roundtrip () =
  with_daemon (fun socket _srv ->
      let c = Server.Client.connect ~retries:50 socket in
      Fun.protect ~finally:(fun () -> Server.Client.close c) @@ fun () ->
      let events =
        Server.Client.request c
          {|{"id":1,"op":"compile","isax":"dotprod","core":"vexriscv","profile":true}|}
      in
      check_int "target + done" 2 (List.length events);
      let d = done_of events in
      check_bool "ok" true (Json.get_bool (Json.member "ok" d) = Some true);
      check_bool "profile attached" true (Json.member "profile" d <> Json.Null);
      (* malformed request over the wire, then the daemon still serves *)
      let d2 = done_of (Server.Client.request c {|{"op":"frobnicate"}|}) in
      check_bool "error survives transport" true
        (Json.get_bool (Json.member "ok" d2) = Some false);
      let d3 = done_of (Server.Client.request c {|{"op":"ping"}|}) in
      check_bool "alive after error" true (Json.get_bool (Json.member "ok" d3) = Some true))

let test_socket_two_clients_and_shutdown () =
  let socket = tmpsock () in
  let srv = Server.create ~session:(Longnail.Flow.create_session ()) ~socket () in
  let daemon = Domain.spawn (fun () -> Server.serve srv) in
  let c1 = Server.Client.connect ~retries:50 socket in
  let c2 = Server.Client.connect ~retries:50 socket in
  let d1 =
    done_of (Server.Client.request c1 {|{"op":"compile","isax":"dotprod","core":"vexriscv"}|})
  in
  let d2 = done_of (Server.Client.request c2 {|{"op":"stats"}|}) in
  check_bool "client1 ok" true (Json.get_bool (Json.member "ok" d1) = Some true);
  check_bool "client2 ok" true (Json.get_bool (Json.member "ok" d2) = Some true);
  check_bool "stats counted requests" true
    (match Json.get_int (Json.member "requests" d2) with Some n -> n >= 2 | None -> false);
  (* shutdown over the wire: the loop drains and the socket disappears *)
  let d3 = done_of (Server.Client.request c1 {|{"op":"shutdown"}|}) in
  check_bool "shutdown acked" true (Json.get_bool (Json.member "ok" d3) = Some true);
  Server.Client.close c1;
  Server.Client.close c2;
  Domain.join daemon;
  check_bool "socket removed" false (Sys.file_exists socket);
  check_bool "requests served" true (Server.requests_served srv >= 3)

let test_stale_socket_reclaimed () =
  (* debris from a crashed daemon must be reclaimed, a live daemon must
     not be displaced, and a non-socket file must never be deleted *)
  let socket = tmpsock () in
  (* bind a socket and close the fd without unlinking: the file remains
     but nothing listens — exactly what a crashed daemon leaves behind *)
  let stale = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind stale (Unix.ADDR_UNIX socket);
  Unix.close stale;
  let srv2 = Server.create ~session:(Longnail.Flow.create_session ()) ~socket () in
  let daemon = Domain.spawn (fun () -> Server.serve srv2) in
  let c = Server.Client.connect ~retries:50 socket in
  let d = done_of (Server.Client.request c {|{"op":"ping"}|}) in
  check_bool "reclaimed and serving" true (Json.get_bool (Json.member "ok" d) = Some true);
  (* a live daemon on the path is an E0911 *)
  (match Server.create ~session:(Longnail.Flow.create_session ()) ~socket () with
  | _ -> Alcotest.fail "expected E0911 for a live daemon"
  | exception Diag.Fatal [ d ] -> check_str "live daemon code" "E0911" d.Diag.code);
  Server.Client.close c;
  Server.stop srv2;
  Domain.join daemon;
  (* a plain file is refused, not unlinked *)
  let plain = Filename.temp_file "longnail-notsock" "" in
  (match Server.create ~session:(Longnail.Flow.create_session ()) ~socket:plain () with
  | _ -> Alcotest.fail "expected E0911 for a non-socket file"
  | exception Diag.Fatal [ d ] -> check_str "non-socket code" "E0911" d.Diag.code);
  check_bool "plain file untouched" true (Sys.file_exists plain);
  Sys.remove plain

let () =
  Alcotest.run "server"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "numbers" `Quick test_json_numbers;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "rejects malformed" `Quick test_json_rejects;
          Alcotest.test_case "member access" `Quick test_json_member;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "ping" `Quick test_ping;
          Alcotest.test_case "malformed is E0910" `Quick test_malformed_is_e0910;
          Alcotest.test_case "bad requests" `Quick test_unknown_op_and_missing_fields;
          Alcotest.test_case "unknown core is E0912" `Quick test_unknown_core_is_e0912;
          Alcotest.test_case "compile batch" `Quick test_compile_inline;
          Alcotest.test_case "diagnostics on the wire" `Quick
            test_compile_diagnostics_on_wire;
          Alcotest.test_case "lint" `Quick test_lint_op;
        ] );
      ( "socket",
        [
          Alcotest.test_case "roundtrip + isolation" `Quick test_socket_roundtrip;
          Alcotest.test_case "two clients + shutdown" `Quick
            test_socket_two_clients_and_shutdown;
          Alcotest.test_case "stale socket reclaimed" `Quick test_stale_socket_reclaimed;
        ] );
    ]
