(* Tests for the structured diagnostics engine: golden renderings of the
   caret-snippet text format and the JSON format, the error-code registry,
   multi-error accumulation across the front end, parser error recovery,
   and import-chain provenance. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ---- golden text rendering ---- *)

let test_render_caret_layout () =
  let file = "demo1.core_desc" in
  Diag.register_source ~file "instr ADD {\n  x = y + z;\n}\n";
  let span =
    { Diag.sp_file = file; sp_line = 2; sp_col = 7; sp_end_line = 2; sp_end_col = 12 }
  in
  let d = Diag.make ~span ~notes:[ "try an explicit cast" ] ~code:"E0102" "type mismatch" in
  let expected =
    String.concat "\n"
      [
        "demo1.core_desc:2:7: error[E0102]: type mismatch";
        "  2 |   x = y + z;";
        "    |       ^^^^^";
        "  note: try an explicit cast";
      ]
  in
  (* a point span renders a single caret *)
  check_str "caret layout" expected (Diag.to_string d);
  let p = Diag.point ~file ~line:2 ~col:3 in
  let d2 = Diag.make ~span:p ~code:"E0101" "unknown identifier 'x'" in
  let expected2 =
    String.concat "\n"
      [
        "demo1.core_desc:2:3: error[E0101]: unknown identifier 'x'";
        "  2 |   x = y + z;";
        "    |   ^";
      ]
  in
  check_str "point span caret" expected2 (Diag.to_string d2)

let test_render_without_source_or_span () =
  (* unregistered file: header only, no snippet *)
  let span = Diag.point ~file:"not_registered.cd" ~line:3 ~col:1 in
  let d = Diag.make ~span ~code:"E0109" "some error" in
  check_str "no snippet" "not_registered.cd:3:1: error[E0109]: some error" (Diag.to_string d);
  (* no span at all: bare header *)
  let d2 = Diag.make ~code:"E0901" "internal error" in
  check_str "no span" "error[E0901]: internal error" (Diag.to_string d2)

let test_render_labels () =
  let file = "demo2.core_desc" in
  Diag.register_source ~file "import \"a.inc\"\n";
  let lb =
    { Diag.lb_span = Diag.point ~file ~line:1 ~col:1; lb_text = "imported here" }
  in
  let d = Diag.make ~labels:[ lb ] ~code:"E0201" "cannot resolve import \"b.inc\"" in
  let expected =
    String.concat "\n"
      [
        "error[E0201]: cannot resolve import \"b.inc\"";
        "  --> demo2.core_desc:1:1: imported here";
        "  1 | import \"a.inc\"";
        "    | ^";
      ]
  in
  check_str "label rendering" expected (Diag.to_string d)

(* ---- golden JSON rendering ---- *)

let test_json_rendering () =
  let span =
    { Diag.sp_file = "j.cd"; sp_line = 1; sp_col = 2; sp_end_line = 1; sp_end_col = 5 }
  in
  let lb = { Diag.lb_span = Diag.point ~file:"k.cd" ~line:7 ~col:3; lb_text = "here" } in
  let d = Diag.make ~span ~labels:[ lb ] ~notes:[ "a \"note\"" ] ~code:"E0102" "bad" in
  let expected =
    {|{"diagnostics":[{"severity":"error","code":"E0102","message":"bad",|}
    ^ {|"span":{"file":"j.cd","line":1,"col":2,"end_line":1,"end_col":5},|}
    ^ {|"labels":[{"span":{"file":"k.cd","line":7,"col":3,"end_line":7,"end_col":3},"text":"here"}],|}
    ^ {|"notes":["a \"note\""]}]}|}
  in
  check_str "json" expected (Diag.to_json [ d ]);
  (* a spanless diagnostic serializes span as null *)
  let d2 = Diag.make ~code:"E0901" "boom" in
  check_str "json null span"
    {|{"diagnostics":[{"severity":"error","code":"E0901","message":"boom","span":null,"labels":[],"notes":[]}]}|}
    (Diag.to_json [ d2 ])

(* ---- registry ---- *)

let test_registry () =
  check_bool "E0401 registered" true (Diag.is_registered "E0401");
  check_bool "E9999 not registered" false (Diag.is_registered "E9999");
  check_str "describe" "scheduling infeasible" (Option.get (Diag.describe "E0401"));
  (* sorted and unique: the CI gate diffs this listing against
     docs/ERROR_CODES.txt *)
  let codes = List.map fst Diag.all_codes in
  check_bool "sorted" true (List.sort compare codes = codes);
  check_int "unique" (List.length codes) (List.length (List.sort_uniq compare codes));
  List.iter
    (fun c ->
      check_bool (c ^ " shaped") true
        (String.length c = 5
        && (c.[0] = 'E' || c.[0] = 'W')
        && String.for_all (fun ch -> ch >= '0' && ch <= '9') (String.sub c 1 4)))
    codes

(* ---- collector ordering ---- *)

let test_collector_ordering () =
  let c = Diag.collector () in
  check_bool "empty" false (Diag.has_errors c);
  Diag.add c (Diag.make ~code:"E0101" "first");
  Diag.add c (Diag.make ~code:"E0102" "second");
  Diag.add c (Diag.make ~code:"E0109" "third");
  check_bool "has errors" true (Diag.has_errors c);
  check_str "insertion order" "first,second,third"
    (String.concat "," (List.map (fun (d : Diag.t) -> d.Diag.message) (Diag.to_list c)))

(* ---- parser error recovery ---- *)

let test_parser_recovery_multiple_errors () =
  (* two broken instructions and one good one: both errors are recorded,
     the good instruction survives *)
  let src =
    {|
InstructionSet T {
  instructions {
    BAD1 { encoding: ; behavior: {} }
    GOOD { encoding: 27'd0 :: rd[4:0]; behavior: {} }
    BAD2 { encoding: 32'd1; behavior: { = ; } }
  }
}
|}
  in
  let diags = Diag.collector () in
  let d = Coredsl.Parser.parse ~diags ~file:"recover.core_desc" src in
  let errs = Diag.to_list diags in
  check_int "two syntax errors" 2 (List.length errs);
  List.iter
    (fun (e : Diag.t) ->
      check_str "code" "E0002" e.Diag.code;
      match e.Diag.span with
      | Some sp ->
          check_bool "valid span" true (Diag.span_is_valid sp);
          check_str "file" "recover.core_desc" sp.Diag.sp_file
      | None -> Alcotest.fail "syntax diagnostic without span")
    errs;
  (* errors are reported in source order *)
  (match List.map (fun (e : Diag.t) -> (Option.get e.Diag.span).Diag.sp_line) errs with
  | [ l1; l2 ] -> check_bool "ordered by line" true (l1 < l2)
  | _ -> Alcotest.fail "expected two spans");
  match d.Coredsl.Ast.sets with
  | [ s ] ->
      check_str "good instruction kept" "GOOD"
        (List.hd s.Coredsl.Ast.set_isa.instructions).Coredsl.Ast.iname
  | _ -> Alcotest.fail "expected one instruction set"

(* ---- multi-error accumulation across the front end ---- *)

let multi_error_src =
  {|import "RV32I.core_desc"
InstructionSet T extends RV32I {
  instructions {
    E1 { encoding: 12'd0 :: rs1[4:0] :: 3'b001 :: rd[4:0] :: 7'b1111011;
         behavior: { X[rd] = NOT_A_THING; } }
    E2 { encoding: 12'd0 :: rs1[4:0] :: 3'b010 :: rd[4:0] :: 7'b1111011;
         behavior: { unsigned<5> u5 = 0; unsigned<4> u4 = u5; } }
    E3 { encoding: 12'd0 :: rs1[4:0] :: 3'b011 :: rd[4:0] :: 7'b1111011;
         behavior: { signed<4> s4 = 0; unsigned<4> u4 = s4; } }
  }
}
|}

let test_multi_error_one_run () =
  match Coredsl.compile_result ~file:"multi.core_desc" ~target:"T" multi_error_src with
  | Ok _ -> Alcotest.fail "expected three type errors"
  | Error ds ->
      check_int "all three reported" 3 (List.length ds);
      check_str "codes" "E0101,E0102,E0102"
        (String.concat "," (List.map (fun (d : Diag.t) -> d.Diag.code) ds));
      List.iter
        (fun (d : Diag.t) ->
          match d.Diag.span with
          | Some sp ->
              check_bool "valid span" true (Diag.span_is_valid sp);
              check_str "file" "multi.core_desc" sp.Diag.sp_file;
              (* each error points into the behavior block of its instruction *)
              check_bool "line in body" true (sp.Diag.sp_line >= 5 && sp.Diag.sp_line <= 9)
          | None -> Alcotest.fail "type diagnostic without span")
        ds;
      (* rendered text carries one caret snippet per error *)
      let txt = Format.asprintf "%a" Diag.render_all ds in
      check_int "three headers" 3
        (List.length
           (List.filter (fun l -> String.length l > 0 && l.[0] <> ' ')
              (String.split_on_char '\n' txt)));
      check_bool "caret present" true (String.exists (fun c -> c = '^') txt)

(* ---- import-chain provenance ---- *)

let test_import_chain_provenance () =
  let provider path =
    if path = "mid.inc" then Some "import \"missing.inc\"\nInstructionSet M { }\n"
    else None
  in
  let src = "import \"mid.inc\"\nInstructionSet T extends M { }\n" in
  match Coredsl.compile_result ~provider ~file:"top.core_desc" ~target:"T" src with
  | Ok _ -> Alcotest.fail "expected unresolved import"
  | Error [ d ] ->
      check_str "code" "E0201" d.Diag.code;
      (* primary span: the failing import statement inside mid.inc *)
      let sp = Option.get d.Diag.span in
      check_str "file" "mid.inc" sp.Diag.sp_file;
      check_int "line" 1 sp.Diag.sp_line;
      (* provenance label: the import site in the top-level file *)
      (match d.Diag.labels with
      | [ lb ] ->
          check_str "label text" "imported here" lb.Diag.lb_text;
          check_str "label file" "top.core_desc" lb.Diag.lb_span.Diag.sp_file;
          check_int "label line" 1 lb.Diag.lb_span.Diag.sp_line
      | ls -> Alcotest.failf "expected one provenance label, got %d" (List.length ls));
      (* both snippets appear in the rendered text *)
      let txt = Diag.to_string d in
      check_bool "cites mid.inc" true (contains ~sub:"mid.inc:1:1" txt);
      check_bool "cites top file" true (contains ~sub:"top.core_desc:1:1" txt)
  | Error ds -> Alcotest.failf "expected exactly one diagnostic, got %d" (List.length ds)

let () =
  Alcotest.run "diag"
    [
      ( "render",
        [
          Alcotest.test_case "caret layout" `Quick test_render_caret_layout;
          Alcotest.test_case "no source / no span" `Quick test_render_without_source_or_span;
          Alcotest.test_case "labels" `Quick test_render_labels;
          Alcotest.test_case "json" `Quick test_json_rendering;
        ] );
      ( "registry",
        [
          Alcotest.test_case "codes" `Quick test_registry;
          Alcotest.test_case "collector order" `Quick test_collector_ordering;
        ] );
      ( "front-end",
        [
          Alcotest.test_case "parser recovery" `Quick test_parser_recovery_multiple_errors;
          Alcotest.test_case "multi-error run" `Quick test_multi_error_one_run;
          Alcotest.test_case "import provenance" `Quick test_import_chain_provenance;
        ] );
    ]
