(* Tests for lib/analysis: the dialect-aware IR verifier, the dataflow
   framework, the CoreDSL linter and the netlist structural checks, plus
   the --verify-each sanitizer's no-observable-effect contract. *)

module M = Ir.Mir
module V = Analysis.Verifier
module D = Analysis.Dataflow
module L = Analysis.Lint
module N = Analysis.Netcheck
module A = Analysis.Absint
module Tv = Analysis.Tv
module Nw = Analysis.Narrow
module Bn = Bitvec.Bn

let u = Bitvec.unsigned_ty

let codes ds = List.map (fun (d : Diag.t) -> d.Diag.code) ds

let has_code c ds = List.mem c (codes ds)

(* ---- helpers: hand-built graphs ---- *)

(* a well-formed straight-line HLIR graph: r = (a + b), set into X *)
let good_hlir () =
  let b = M.builder () in
  let a = M.add_op1 b "coredsl.get" [] (u 32) ~attrs:[ ("state", M.A_str "X") ] in
  let c = M.add_op1 b "hw.constant" [] (u 32) ~attrs:[ ("value", M.A_bv (Bitvec.of_int (u 32) 7)) ] in
  let s = M.add_op1 b "hwarith.add" [ a; c ] (u 33) in
  ignore (M.add_op b "coredsl.set" [ s ] [] ~attrs:[ ("state", M.A_str "ACC") ]);
  M.finish b ~name:"good" ~kind:`Instruction ()

let mk_graph body = { M.gname = "hand"; gkind = `Instruction; gattrs = []; body }

let mk_val vid ty = { M.vid; vty = ty; vhint = "" }

let mk_op ?(oid = 0) ?(attrs = []) ?(regions = []) opname operands results =
  { M.oid; opname; operands; results; attrs; regions; oloc = None }

(* ---- verifier: accepts every bundled graph at both levels ---- *)

let test_verifier_accepts_bundled () =
  List.iter
    (fun (e : Isax.Registry.entry) ->
      let tu = Isax.Registry.compile e in
      List.iter
        (fun ti ->
          if Longnail.Flow.is_isax_instruction ti then begin
            let hlir = Ir.Hlir.lower_instruction tu ti in
            Alcotest.(check (list string))
              (Printf.sprintf "%s/%s hlir clean" e.name ti.Coredsl.Tast.ti_name)
              [] (codes (V.check ~level:`Hlir hlir))
          end)
        tu.Coredsl.Tast.tinstrs;
      let c = Longnail.Flow.compile Scaiev.Datasheet.vexriscv tu in
      List.iter
        (fun (f : Longnail.Flow.compiled_functionality) ->
          Alcotest.(check (list string))
            (Printf.sprintf "%s/%s lil clean" e.name f.cf_name)
            [] (codes (V.check ~level:`Lil f.cf_lil));
          (* `Any infers the right level for both forms *)
          Alcotest.(check (list string))
            (Printf.sprintf "%s/%s any clean" e.name f.cf_name)
            []
            (codes (V.check f.cf_hlir) @ codes (V.check f.cf_lil)))
        c.Longnail.Flow.funcs)
    Isax.Registry.all

(* ---- verifier: rejects curated malformed graphs ---- *)

let expect_codes name expected g level =
  let got = codes (V.check ?level g) in
  List.iter
    (fun c ->
      Alcotest.(check bool) (Printf.sprintf "%s reports %s" name c) true (List.mem c got))
    expected

let test_verifier_rejects () =
  let v32 i = mk_val i (u 32) in
  (* unknown operation *)
  expect_codes "unknown op" [ "E0510" ]
    (mk_graph [ mk_op "hwarith.bogus" [] [ v32 0 ] ])
    (Some `Hlir);
  (* wrong arity: hwarith.add with one operand *)
  expect_codes "bad arity" [ "E0510" ]
    (mk_graph
       [
         mk_op "hw.constant" [] [ v32 0 ]
           ~attrs:[ ("value", M.A_bv (Bitvec.of_int (u 32) 1)) ];
         mk_op ~oid:1 "hwarith.add" [ v32 0 ] [ v32 1 ];
       ])
    (Some `Hlir);
  (* missing required attribute on hw.constant *)
  expect_codes "missing attr" [ "E0510" ]
    (mk_graph [ mk_op "hw.constant" [] [ v32 0 ] ])
    (Some `Hlir);
  (* comb width rule: operand widths must equal the result width *)
  expect_codes "comb width" [ "E0510" ]
    (mk_graph
       [
         mk_op "lil.read_rs1" [] [ v32 0 ];
         mk_op ~oid:1 "lil.read_rs2" [] [ mk_val 1 (u 16) ];
         mk_op ~oid:2 "comb.add" [ v32 0; mk_val 1 (u 16) ] [ v32 2 ];
         mk_op ~oid:3 "lil.write_rd" [ v32 2 ] [];
         mk_op ~oid:4 "lil.sink" [] [];
       ])
    (Some `Lil);
  (* unknown icmp predicate *)
  expect_codes "bad predicate" [ "E0510" ]
    (mk_graph
       [
         mk_op "coredsl.get" [] [ v32 0 ] ~attrs:[ ("state", M.A_str "X") ];
         mk_op ~oid:1 "hwarith.icmp" [ v32 0; v32 0 ]
           [ mk_val 1 (u 1) ]
           ~attrs:[ ("predicate", M.A_str "spaceship") ];
       ])
    (Some `Hlir);
  (* use before (or without) definition *)
  expect_codes "use before def" [ "E0511" ]
    (mk_graph [ mk_op "hwarith.not" [ v32 99 ] [ v32 0 ] ])
    (Some `Hlir);
  (* double definition *)
  expect_codes "double def" [ "E0511" ]
    (mk_graph
       [
         mk_op "coredsl.get" [] [ v32 0 ] ~attrs:[ ("state", M.A_str "X") ];
         mk_op ~oid:1 "coredsl.get" [] [ v32 0 ] ~attrs:[ ("state", M.A_str "X") ];
       ])
    (Some `Hlir);
  (* operand type disagrees with the defining result type *)
  expect_codes "type mismatch" [ "E0511" ]
    (mk_graph
       [
         mk_op "coredsl.get" [] [ v32 0 ] ~attrs:[ ("state", M.A_str "X") ];
         mk_op ~oid:1 "hwarith.not" [ mk_val 0 (u 8) ] [ mk_val 1 (u 8) ];
       ])
    (Some `Hlir);
  (* lil graph without the lil.sink terminator *)
  expect_codes "missing sink" [ "E0510" ]
    (mk_graph
       [ mk_op "lil.read_rs1" [] [ v32 0 ]; mk_op ~oid:1 "lil.write_rd" [ v32 0 ] [] ])
    (Some `Lil);
  (* dialect mixing: a hwarith op in a lil graph *)
  expect_codes "dialect mixing" [ "E0510" ]
    (mk_graph
       [
         mk_op "lil.read_rs1" [] [ v32 0 ];
         mk_op ~oid:1 "hwarith.not" [ v32 0 ] [ v32 1 ];
         mk_op ~oid:2 "lil.write_rd" [ v32 1 ] [];
         mk_op ~oid:3 "lil.sink" [] [];
       ])
    (Some `Lil);
  (* a good graph reports nothing *)
  Alcotest.(check (list string)) "good graph clean" [] (codes (V.check (good_hlir ())))

(* corrupting an optimized LIL graph must be caught at the `Lil level —
   the property the --verify-each sanitizer (E0512) relies on *)
let test_verifier_catches_corruption () =
  let tu = Isax.Registry.compile_by_name "dotprod" in
  let c = Longnail.Flow.compile Scaiev.Datasheet.vexriscv tu in
  let f = List.hd c.Longnail.Flow.funcs in
  let lil = f.Longnail.Flow.cf_lil in
  (* drop the terminator *)
  let no_sink =
    { lil with M.body = List.filter (fun (o : M.op) -> o.M.opname <> "lil.sink") lil.M.body }
  in
  Alcotest.(check bool) "dropped sink caught" true (has_code "E0510" (V.check ~level:`Lil no_sink));
  (* drop a mid-graph definition: its users now use an undefined value *)
  let dropped =
    let def =
      List.find (fun (o : M.op) -> o.M.results <> [] && o.M.opname <> "lil.sink") lil.M.body
    in
    { lil with M.body = List.filter (fun (o : M.op) -> o.M.oid <> def.M.oid) lil.M.body }
  in
  Alcotest.(check bool) "dangling use caught" true
    (V.check ~level:`Lil dropped <> [])

(* ---- dataflow ---- *)

(* ranges: on a constant-only graph the interval analysis is exact and
   must agree with native arithmetic *)
let prop_ranges_exact =
  QCheck.Test.make ~name:"range analysis is exact on constant graphs" ~count:100
    (QCheck.triple (QCheck.int_bound 0xFFFF) (QCheck.int_bound 0xFFFF) (QCheck.int_bound 2))
    (fun (a, b, sel) ->
      let bld = M.builder () in
      let ca =
        M.add_op1 bld "hw.constant" [] (u 32) ~attrs:[ ("value", M.A_bv (Bitvec.of_int (u 32) a)) ]
      in
      let cb =
        M.add_op1 bld "hw.constant" [] (u 32) ~attrs:[ ("value", M.A_bv (Bitvec.of_int (u 32) b)) ]
      in
      let opname = List.nth [ "hwarith.add"; "hwarith.sub"; "hwarith.mul" ] sel in
      (* signed result type: hwarith subtraction of unsigned operands can
         go negative, and the interval is clamped to the result type *)
      let r = M.add_op1 bld opname [ ca; cb ] (Bitvec.signed_ty 40) in
      ignore (M.add_op bld "coredsl.set" [ r ] [] ~attrs:[ ("state", M.A_str "ACC") ]);
      let g = M.finish bld ~name:"const" ~kind:`Instruction () in
      let res = D.run D.ranges g in
      let expect =
        match sel with 0 -> a + b | 1 -> a - b | _ -> a * b
      in
      match res.D.fact_of r with
      | Some rng -> (
          match D.range_exact rng with
          | Some v -> Bn.equal v (Bn.of_int expect)
          | None -> false)
      | None -> false)

let test_range_of_ty () =
  let r = D.range_of_ty (u 8) in
  Alcotest.(check string) "u8 lo" "0" (Bn.to_string r.D.lo);
  Alcotest.(check string) "u8 hi" "255" (Bn.to_string r.D.hi);
  let s = D.range_of_ty (Bitvec.signed_ty 8) in
  Alcotest.(check string) "s8 lo" "-128" (Bn.to_string s.D.lo);
  Alcotest.(check string) "s8 hi" "127" (Bn.to_string s.D.hi)

let test_liveness () =
  let bld = M.builder () in
  let a = M.add_op1 bld "coredsl.get" [] (u 32) ~attrs:[ ("state", M.A_str "ACC") ] in
  let live = M.add_op1 bld "hwarith.not" [ a ] (u 32) in
  let dead = M.add_op1 bld "hwarith.add" [ a; a ] (u 33) in
  ignore (M.add_op bld "coredsl.set" [ live ] [] ~attrs:[ ("state", M.A_str "ACC") ]);
  let g = M.finish bld ~name:"live" ~kind:`Instruction () in
  let res = D.run D.liveness g in
  Alcotest.(check bool) "feeds a set: live" true (res.D.fact_of live);
  Alcotest.(check bool) "transitively live" true (res.D.fact_of a);
  Alcotest.(check bool) "unused compute: dead" false (res.D.fact_of dead)

(* convergence: the engine's transfer count stays within a small multiple
   of the graph size on every bundled HLIR graph *)
let test_dataflow_converges () =
  List.iter
    (fun (e : Isax.Registry.entry) ->
      let tu = Isax.Registry.compile e in
      List.iter
        (fun ti ->
          if Longnail.Flow.is_isax_instruction ti then begin
            let g = Ir.Hlir.lower_instruction tu ti in
            let n = List.length (M.all_ops g) in
            let check_spec name spec =
              let res = D.run spec g in
              if res.D.iterations > 8 * (n + 1) then
                Alcotest.failf "%s/%s: %s took %d transfers for %d ops" e.name
                  ti.Coredsl.Tast.ti_name name res.D.iterations n
            in
            check_spec "ranges" D.ranges;
            check_spec "liveness" D.liveness;
            check_spec "absint" A.spec
          end)
        tu.Coredsl.Tast.tinstrs)
    Isax.Registry.all

(* widening: a range that keeps growing is jumped to the type bound after
   [widen_threshold] changes, which is what makes fixpoints linear *)
let test_range_widening () =
  Alcotest.(check int) "threshold exported" 3 D.widen_threshold;
  let v = mk_val 0 (u 8) in
  let r lo hi = { D.lo = Bn.of_int lo; hi = Bn.of_int hi } in
  (match D.widen_range v (Some (r 0 10)) (Some (r 0 20)) with
  | Some w ->
      Alcotest.(check string) "lo kept" "0" (Bn.to_string w.D.lo);
      Alcotest.(check string) "hi widened to type bound" "255" (Bn.to_string w.D.hi)
  | None -> Alcotest.fail "widening lost the fact");
  (* a stable bound is left alone *)
  match D.widen_range v (Some (r 3 10)) (Some (r 2 10)) with
  | Some w ->
      Alcotest.(check string) "lo widened" "0" (Bn.to_string w.D.lo);
      Alcotest.(check string) "hi untouched" "10" (Bn.to_string w.D.hi)
  | None -> Alcotest.fail "widening lost the fact"

let test_reaching_writes () =
  let tu = Isax.Registry.compile_by_name "dotprod" in
  let ti =
    List.find (fun t -> Longnail.Flow.is_isax_instruction t) tu.Coredsl.Tast.tinstrs
  in
  let g = Ir.Hlir.lower_instruction tu ti in
  let writes = D.reaching_writes g in
  Alcotest.(check bool) "dotprod writes state" true (writes <> []);
  List.iter
    (fun (state, (op : M.op)) ->
      Alcotest.(check bool)
        (Printf.sprintf "write op %s is a set/store" op.M.opname)
        true
        (List.mem op.M.opname [ "coredsl.set"; "coredsl.store" ]);
      Alcotest.(check bool) "state name nonempty" true (state <> ""))
    writes

(* ---- linter ---- *)

(* a one-instruction unit around [behavior], in the fuzz-harness shape *)
let lint_src behavior =
  Printf.sprintf
    {|
import "RV32I.core_desc"
InstructionSet LINTME extends RV32I {
  instructions {
    LT {
      encoding: 7'd9 :: rs2[4:0] :: rs1[4:0] :: 3'b111 :: rd[4:0] :: 7'b1111011;
      behavior: {
%s
      }
    }
  }
}
|}
    behavior

let lint_of behavior =
  L.lint_unit (Coredsl.compile ~target:"LINTME" (lint_src behavior))

let expect_warning name behavior code =
  let ds = lint_of behavior in
  Alcotest.(check bool)
    (Printf.sprintf "%s emits %s (got: %s)" name code (String.concat "," (codes ds)))
    true (has_code code ds);
  List.iter
    (fun (d : Diag.t) ->
      Alcotest.(check bool) "severity is Warning" true (d.Diag.severity = Diag.Warning);
      Alcotest.(check bool) "code registered" true (Diag.is_registered d.Diag.code))
    ds

let test_lint_catalog () =
  (* W1001: a computed value never used *)
  expect_warning "dead assignment"
    {|unsigned<32> a = X[rs1];
      unsigned<32> t = (unsigned<32>)(a * a);
      if (rd != 0) X[rd] = a;|}
    "W1001";
  (* W1002: rs2 appears in the encoding but never in the behavior *)
  expect_warning "unused field" {|if (rd != 0) X[rd] = X[rs1];|} "W1002";
  (* W1004: a provably constant branch condition (literal comparisons are
     folded by the front end, so compare a 5-bit field against 100 —
     only the range analysis can see that rd <= 31) *)
  expect_warning "constant condition"
    {|unsigned<32> a = X[rs1];
      if (rd > 100) { a = (unsigned<32>)(a + X[rs2]); }
      if (rd != 0) X[rd] = a;|}
    "W1004";
  (* W1005: shift amount provably >= the operand width *)
  expect_warning "oversized shift"
    {|unsigned<32> a = X[rs1];
      if (rd != 0) X[rd] = (unsigned<32>)((a << 40) + X[rs2]);|}
    "W1005";
  (* W1006: a local read before any assignment *)
  expect_warning "read before assign"
    {|unsigned<32> t;
      unsigned<32> a = (unsigned<32>)(t + X[rs1]);
      if (rd != 0) X[rd] = (unsigned<32>)(a + X[rs2]);|}
    "W1006";
  (* W1007: the instruction writes no architectural state at all *)
  expect_warning "writes nothing" {|unsigned<32> a = (unsigned<32>)(X[rs1] + X[rs2]);|}
    "W1007"

(* the bundled ISAXes have a small, known warning set (the checked-in
   docs/LINT_GOLDEN.txt contract, asserted here in-process) *)
let test_lint_bundled () =
  let expect = [ ("sparkle", 2); ("sqrt_tightly", 1); ("sqrt_decoupled", 1) ] in
  List.iter
    (fun (e : Isax.Registry.entry) ->
      let ds = L.lint_unit (Isax.Registry.compile e) in
      let n = match List.assoc_opt e.name expect with Some n -> n | None -> 0 in
      Alcotest.(check int)
        (Printf.sprintf "%s warning count (got: %s)" e.name (String.concat "," (codes ds)))
        n (List.length ds);
      List.iter
        (fun (d : Diag.t) ->
          Alcotest.(check bool) "is W1001" true (d.Diag.code = "W1001");
          Alcotest.(check bool) "has span" true (d.Diag.span <> None))
        ds)
    Isax.Registry.all

let test_lint_promote () =
  let ds = L.lint_unit (Isax.Registry.compile_by_name "sparkle") in
  Alcotest.(check bool) "sparkle warns" true (ds <> []);
  List.iter
    (fun (d : Diag.t) ->
      Alcotest.(check bool) "promoted to Error" true (d.Diag.severity = Diag.Error))
    (L.promote ds)

let test_w_codes_registered () =
  List.iter
    (fun (code, _) ->
      Alcotest.(check bool) (code ^ " registered") true (Diag.is_registered code))
    L.lint_codes;
  Alcotest.(check bool) "catalog covers W1001..W1010" true
    (List.for_all
       (fun c -> List.mem_assoc c L.lint_codes)
       [
         "W1001"; "W1002"; "W1003"; "W1004"; "W1005"; "W1006"; "W1007"; "W1008";
         "W1009"; "W1010";
       ])

(* ---- netlist checks ---- *)

let comb ~out ~width ~op inputs = Rtl.Netlist.Comb { out; width; op; attrs = []; inputs }

let port name width = { Rtl.Netlist.port_name = name; port_width = width; port_signal = name }

let test_netcheck () =
  let base ~nodes ~outputs =
    { Rtl.Netlist.mod_name = "T"; inputs = [ port "i" 8 ]; outputs; nodes }
  in
  (* clean: i -> not -> o *)
  let clean =
    base
      ~nodes:[ comb ~out:"n" ~width:8 ~op:"comb.xor" [ "i"; "i" ] ]
      ~outputs:[ { Rtl.Netlist.port_name = "o"; port_width = 8; port_signal = "n" } ]
  in
  Alcotest.(check (list string)) "clean netlist" [] (codes (N.check clean));
  (* multiple drivers: two nodes share an output name *)
  let multi =
    base
      ~nodes:
        [
          comb ~out:"n" ~width:8 ~op:"comb.xor" [ "i"; "i" ];
          comb ~out:"n" ~width:8 ~op:"comb.and" [ "i"; "i" ];
        ]
      ~outputs:[ { Rtl.Netlist.port_name = "o"; port_width = 8; port_signal = "n" } ]
  in
  Alcotest.(check bool) "multiple drivers" true (has_code "E0520" (N.check multi));
  (* a node shadowing an input port is also a double drive *)
  let shadow =
    base
      ~nodes:[ comb ~out:"i" ~width:8 ~op:"comb.xor" [ "i"; "i" ] ]
      ~outputs:[ { Rtl.Netlist.port_name = "o"; port_width = 8; port_signal = "i" } ]
  in
  Alcotest.(check bool) "input shadowed" true (has_code "E0520" (N.check shadow));
  (* undefined signal *)
  let undef =
    base
      ~nodes:[ comb ~out:"n" ~width:8 ~op:"comb.xor" [ "i"; "ghost" ] ]
      ~outputs:[ { Rtl.Netlist.port_name = "o"; port_width = 8; port_signal = "n" } ]
  in
  Alcotest.(check bool) "undefined signal" true (has_code "E0522" (N.check undef));
  (* combinational cycle a -> b -> a, with the path in the message *)
  let cyc =
    base
      ~nodes:
        [
          comb ~out:"a" ~width:8 ~op:"comb.xor" [ "b"; "i" ];
          comb ~out:"b" ~width:8 ~op:"comb.xor" [ "a"; "i" ];
        ]
      ~outputs:[ { Rtl.Netlist.port_name = "o"; port_width = 8; port_signal = "a" } ]
  in
  let ds = N.check cyc in
  Alcotest.(check bool) "cycle found" true (has_code "E0521" ds);
  let d = List.find (fun (d : Diag.t) -> d.Diag.code = "E0521") ds in
  let mentions s =
    let msg = d.Diag.message in
    let nl = String.length s and hl = String.length msg in
    let rec go i = i + nl <= hl && (String.sub msg i nl = s || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "path names the signals" true (mentions "a" && mentions "b");
  (* the same loop broken by a register is not a combinational cycle *)
  let through_reg =
    base
      ~nodes:
        [
          comb ~out:"a" ~width:8 ~op:"comb.xor" [ "r"; "i" ];
          Rtl.Netlist.Reg { out = "r"; width = 8; next = "a"; enable = None; init = None };
        ]
      ~outputs:[ { Rtl.Netlist.port_name = "o"; port_width = 8; port_signal = "a" } ]
  in
  Alcotest.(check (list string)) "register breaks the cycle" [] (codes (N.check through_reg));
  (* verify raises on the first violation *)
  (match N.check multi with
  | d0 :: _ -> (
      try
        N.verify multi;
        Alcotest.fail "verify did not raise"
      with N.Netcheck_error d -> Alcotest.(check string) "first violation" d0.Diag.code d.Diag.code)
  | [] -> Alcotest.fail "expected violations")

let test_signal_provenance () =
  let tu = Isax.Registry.compile_by_name "dotprod" in
  let c = Longnail.Flow.compile Scaiev.Datasheet.vexriscv tu in
  let f = List.hd c.Longnail.Flow.funcs in
  let lil = f.Longnail.Flow.cf_lil in
  (* every hwgen signal named after an SSA value with a recorded span
     resolves; unknown names do not *)
  let resolved = ref 0 in
  List.iter
    (fun node ->
      match N.signal_provenance lil (Rtl.Netlist.node_out node) with
      | Some sp ->
          incr resolved;
          Alcotest.(check bool) "span valid" true (Diag.span_is_valid sp)
      | None -> ())
    f.Longnail.Flow.cf_hw.Longnail.Hwgen.netlist.Rtl.Netlist.nodes;
  Alcotest.(check bool) "some signals have provenance" true (!resolved > 0);
  Alcotest.(check bool) "unknown name has none" true (N.signal_provenance lil "clk" = None)

(* ---- the --verify-each sanitizer ---- *)

(* byte-identical SV and YAML with and without the sanitizer, over the
   full bundled ISAX x core grid (the acceptance contract; three combos
   are re-checked from the CLI by scripts/check_verify_each.sh) *)
let test_verify_each_equivalent () =
  List.iter
    (fun (core : Scaiev.Datasheet.t) ->
      List.iter
        (fun (e : Isax.Registry.entry) ->
          let tu = Isax.Registry.compile e in
          let plain =
            Longnail.Flow.compile_request (Longnail.Flow.Request.make ()) core tu
          in
          let checked =
            Longnail.Flow.compile_request
              (Longnail.Flow.Request.make ~verify_each:true ())
              core tu
          in
          let what = Printf.sprintf "%s on %s" e.name core.Scaiev.Datasheet.core_name in
          Alcotest.(check string) (what ^ ": yaml equal")
            plain.Longnail.Flow.config_yaml checked.Longnail.Flow.config_yaml;
          List.iter2
            (fun (a : Longnail.Flow.compiled_functionality)
                 (b : Longnail.Flow.compiled_functionality) ->
              Alcotest.(check string)
                (Printf.sprintf "%s/%s: sv equal" what a.cf_name)
                a.cf_sv b.cf_sv)
            plain.Longnail.Flow.funcs checked.Longnail.Flow.funcs)
        Isax.Registry.all)
    (Scaiev.Core_registry.datasheets ())

(* ---- bit-level abstract interpretation ---- *)

let band = Bn.bitwise ( land )

let test_absint_basics () =
  let bld = M.builder () in
  let a = M.add_op1 bld "lil.read_rs1" [] (u 32) in
  let c =
    M.add_op1 bld "hw.constant" [] (u 32)
      ~attrs:[ ("value", M.A_bv (Bitvec.of_int (u 32) 0xFF)) ]
  in
  (* masking pins the high 24 bits to zero *)
  let masked = M.add_op1 bld "comb.and" [ a; c ] (u 32) in
  (* adding two byte-bounded values pins the high 23 bits *)
  let sum = M.add_op1 bld "comb.add" [ masked; masked ] (u 32) in
  ignore (M.add_op bld "lil.write_rd" [ sum ] []);
  ignore (M.add_op bld "lil.sink" [] []);
  let g = M.finish bld ~name:"mask" ~kind:`Instruction () in
  let res = A.analyze g in
  (match A.fact_of res masked with
  | Some f ->
      Alcotest.(check int) "and: 24 leading bits known"
        24
        (A.leading_known ~width:32 f.A.f_bits)
  | None -> Alcotest.fail "no fact for masked");
  match A.fact_of res sum with
  | Some f ->
      Alcotest.(check bool) "add: high bits known" true
        (A.leading_known ~width:32 f.A.f_bits >= 23)
  | None -> Alcotest.fail "no fact for sum"

(* soundness on random graphs: every fact agrees with concrete evaluation
   (the bits half contains the pattern, the interval contains the value) *)

let check_fact_sound ~what (res : A.result) (v : M.value) (concrete : Bn.t) =
  match A.fact_of res v with
  | None -> QCheck.Test.fail_reportf "%s: no fact for %%%d" what v.M.vid
  | Some f ->
      let w = v.M.vty.Bitvec.width in
      let pat = Bn.mod_pow2 concrete w in
      if not (Bn.equal (band pat f.A.f_bits.bk) f.A.f_bits.bv) then
        QCheck.Test.fail_reportf "%s: %%%d bits claim bk=%s bv=%s but pattern=%s" what
          v.M.vid
          (Bn.to_string f.A.f_bits.bk)
          (Bn.to_string f.A.f_bits.bv)
          (Bn.to_string pat);
      if
        Bn.compare concrete f.A.f_range.D.lo < 0
        || Bn.compare concrete f.A.f_range.D.hi > 0
      then
        QCheck.Test.fail_reportf "%s: %%%d = %s outside claimed [%s,%s]" what v.M.vid
          (Bn.to_string concrete)
          (Bn.to_string f.A.f_range.D.lo)
          (Bn.to_string f.A.f_range.D.hi);
      true

(* random straight-line comb graphs: uniform width, the wrapping algebra *)
let prop_absint_sound_comb =
  QCheck.Test.make ~name:"absint is sound on random comb graphs" ~count:200
    QCheck.(triple (int_bound 1_000_000) (int_bound 0xFFFF) (int_bound 0xFFFF))
    (fun (seed, x1, x2) ->
      let st = Random.State.make [| seed |] in
      let w = 1 + Random.State.int st 12 in
      let bld = M.builder () in
      let i1 = M.add_op1 bld "lil.read_rs1" [] (u w) in
      let i2 = M.add_op1 bld "lil.read_rs2" [] (u w) in
      let cst =
        M.add_op1 bld "hw.constant" [] (u w)
          ~attrs:
            [ ("value", M.A_bv (Bitvec.of_int (u w) (Random.State.int st (1 lsl w)))) ]
      in
      let pool = ref [ i1; i2; cst ] in
      let pick () = List.nth !pool (Random.State.int st (List.length !pool)) in
      let nops = 3 + Random.State.int st 6 in
      for _ = 1 to nops do
        let opname =
          List.nth
            [ "comb.add"; "comb.sub"; "comb.mul"; "comb.and"; "comb.or"; "comb.xor" ]
            (Random.State.int st 6)
        in
        let r = M.add_op1 bld opname [ pick (); pick () ] (u w) in
        pool := r :: !pool
      done;
      ignore (M.add_op bld "lil.write_rd" [ List.hd !pool ] []);
      ignore (M.add_op bld "lil.sink" [] []);
      let g = M.finish bld ~name:"rand_comb" ~kind:`Instruction () in
      (* concrete evaluation through the one true comb semantics *)
      let env : (int, Bitvec.t) Hashtbl.t = Hashtbl.create 16 in
      Hashtbl.replace env i1.M.vid (Bitvec.of_int (u w) (x1 land ((1 lsl w) - 1)));
      Hashtbl.replace env i2.M.vid (Bitvec.of_int (u w) (x2 land ((1 lsl w) - 1)));
      List.iter
        (fun (op : M.op) ->
          if Ir.Comb_eval.is_comb op.M.opname then
            match op.M.results with
            | [ r ] ->
                let ops = List.map (fun (v : M.value) -> Hashtbl.find env v.M.vid) op.M.operands in
                Hashtbl.replace env r.M.vid
                  (Ir.Comb_eval.eval ~name:op.M.opname ~attrs:op.M.attrs ~ops
                     ~result_width:r.M.vty.Bitvec.width)
            | _ -> ())
        (M.all_ops g);
      let res = A.analyze g in
      Hashtbl.fold
        (fun vid x acc ->
          let v = { M.vid; vty = u w; vhint = "" } in
          acc && check_fact_sound ~what:"comb" res v (Bitvec.pattern x))
        env true)

(* random straight-line hwarith graphs: the non-wrapping algebra, result
   types wide enough that values never overflow *)
let prop_absint_sound_hwarith =
  QCheck.Test.make ~name:"absint is sound on random hwarith graphs" ~count:200
    QCheck.(triple (int_bound 1_000_000) (int_bound 0xFFFF) (int_bound 0xFFFF))
    (fun (seed, x1, x2) ->
      let st = Random.State.make [| seed |] in
      let bld = M.builder () in
      let w1 = 2 + Random.State.int st 9 and w2 = 2 + Random.State.int st 9 in
      let i1 = M.add_op1 bld "coredsl.get" [] (u w1) ~attrs:[ ("state", M.A_str "R1") ] in
      let i2 = M.add_op1 bld "coredsl.get" [] (u w2) ~attrs:[ ("state", M.A_str "R2") ] in
      let c = Random.State.int st (1 lsl 8) in
      let cst =
        M.add_op1 bld "hw.constant" [] (u 8)
          ~attrs:[ ("value", M.A_bv (Bitvec.of_int (u 8) c)) ]
      in
      let v1 = Bn.of_int (x1 land ((1 lsl w1) - 1)) in
      let v2 = Bn.of_int (x2 land ((1 lsl w2) - 1)) in
      (* the pool carries each value's concrete meaning alongside it *)
      let pool = ref [ (i1, v1); (i2, v2); (cst, Bn.of_int c) ] in
      let pick () = List.nth !pool (Random.State.int st (List.length !pool)) in
      let signed_ty (v : M.value) = v.M.vty.Bitvec.signed in
      let nops = 3 + Random.State.int st 6 in
      for _ = 1 to nops do
        let a, va = pick () and b, vb = pick () in
        let wa = a.M.vty.Bitvec.width and wb = b.M.vty.Bitvec.width in
        if max wa wb <= 24 then begin
          let any_signed = signed_ty a || signed_ty b in
          match Random.State.int st 5 with
          | 0 ->
              let ty =
                if any_signed then Bitvec.signed_ty (max wa wb + 2)
                else u (max wa wb + 1)
              in
              let r = M.add_op1 bld "hwarith.add" [ a; b ] ty in
              pool := (r, Bn.add va vb) :: !pool
          | 1 ->
              let r = M.add_op1 bld "hwarith.sub" [ a; b ] (Bitvec.signed_ty (max wa wb + 2)) in
              pool := (r, Bn.sub va vb) :: !pool
          | 2 ->
              let ty =
                if any_signed then Bitvec.signed_ty (wa + wb + 1) else u (wa + wb)
              in
              let r = M.add_op1 bld "hwarith.mul" [ a; b ] ty in
              pool := (r, Bn.mul va vb) :: !pool
          | 3 ->
              if (not (signed_ty a)) && not (signed_ty b) then begin
                let r = M.add_op1 bld "hwarith.band" [ a; b ] (u (max wa wb)) in
                pool := (r, band va vb) :: !pool
              end
          | _ ->
              let pred, holds =
                match Random.State.int st 3 with
                | 0 -> ("eq", Bn.compare va vb = 0)
                | 1 -> ("lt", Bn.compare va vb < 0)
                | _ -> ("ge", Bn.compare va vb >= 0)
              in
              let r =
                M.add_op1 bld "hwarith.icmp" [ a; b ] (u 1)
                  ~attrs:[ ("predicate", M.A_str pred) ]
              in
              pool := (r, if holds then Bn.one else Bn.zero) :: !pool
        end
      done;
      let last, _ = List.hd !pool in
      ignore (M.add_op bld "coredsl.set" [ last ] [] ~attrs:[ ("state", M.A_str "ACC") ]);
      let g = M.finish bld ~name:"rand_hw" ~kind:`Instruction () in
      let res = A.analyze g in
      List.for_all
        (fun ((v : M.value), concrete) -> check_fact_sound ~what:"hwarith" res v concrete)
        !pool)

(* ---- translation validation ---- *)

(* a tiny LIL pair differing by a constant: TV must produce the E0530
   counterexample (the injected-miscompile acceptance test) *)
let tv_graph delta =
  let bld = M.builder () in
  let a = M.add_op1 bld "lil.read_rs1" [] (u 8) in
  let c =
    M.add_op1 bld "hw.constant" [] (u 8)
      ~attrs:[ ("value", M.A_bv (Bitvec.of_int (u 8) delta)) ]
  in
  let s = M.add_op1 bld "comb.add" [ a; c ] (u 8) in
  ignore (M.add_op bld "lil.write_rd" [ s ] []);
  ignore (M.add_op bld "lil.sink" [] []);
  M.finish bld ~name:"tv" ~kind:`Instruction ()

let test_tv_accepts_identity () =
  let g = tv_graph 1 in
  let v = Tv.validate ~pass_name:"identity" ~original:g ~optimized:g in
  Alcotest.(check bool) "exhaustive within budget" true v.Tv.tv_exhaustive;
  Alcotest.(check int) "whole 8-bit space driven" 256 v.Tv.tv_vectors

let test_tv_catches_miscompile () =
  match Tv.validate ~pass_name:"bad_pass" ~original:(tv_graph 1) ~optimized:(tv_graph 2) with
  | exception Diag.Fatal (d :: _) ->
      Alcotest.(check string) "code" "E0530" d.Diag.code;
      let mentions s =
        let msg = d.Diag.message in
        let nl = String.length s and hl = String.length msg in
        let rec go i = i + nl <= hl && (String.sub msg i nl = s || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "names the pass" true (mentions "bad_pass")
  | _ -> Alcotest.fail "miscompile not caught"

(* beyond the exhaustive budget the sampled path must still catch it *)
let test_tv_catches_miscompile_sampled () =
  let wide delta =
    let bld = M.builder () in
    let a = M.add_op1 bld "lil.read_rs1" [] (u 32) in
    let b = M.add_op1 bld "lil.read_rs2" [] (u 32) in
    let s = M.add_op1 bld "comb.add" [ a; b ] (u 32) in
    let c =
      M.add_op1 bld "hw.constant" [] (u 32)
        ~attrs:[ ("value", M.A_bv (Bitvec.of_int (u 32) delta)) ]
    in
    let t = M.add_op1 bld "comb.xor" [ s; c ] (u 32) in
    ignore (M.add_op bld "lil.write_rd" [ t ] []);
    ignore (M.add_op bld "lil.sink" [] []);
    M.finish bld ~name:"tv_wide" ~kind:`Instruction ()
  in
  (match Tv.validate ~pass_name:"ok" ~original:(wide 0) ~optimized:(wide 0) with
  | v -> Alcotest.(check bool) "sampled, not exhaustive" false v.Tv.tv_exhaustive);
  match Tv.validate ~pass_name:"bad_wide" ~original:(wide 0) ~optimized:(wide 1) with
  | exception Diag.Fatal (d :: _) -> Alcotest.(check string) "code" "E0530" d.Diag.code
  | _ -> Alcotest.fail "wide miscompile not caught"

(* ---- width narrowing ---- *)

(* every LIL graph of every bundled ISAX, through the narrowing stage:
   the acceptance bar is rewrites in at least 3 ISAXes, each TV-checked *)
let bundled_narrow_stats () =
  List.map
    (fun (e : Isax.Registry.entry) ->
      let tu = Isax.Registry.compile e in
      let stats = ref Nw.zero_stats in
      let add (st : Nw.stats) =
        stats :=
          {
            !stats with
            Nw.ns_ops_rewritten = !stats.Nw.ns_ops_rewritten + st.Nw.ns_ops_rewritten;
            ns_bits_removed = !stats.Nw.ns_bits_removed + st.Nw.ns_bits_removed;
            ns_compares_folded = !stats.Nw.ns_compares_folded + st.Nw.ns_compares_folded;
            ns_selects_removed = !stats.Nw.ns_selects_removed + st.Nw.ns_selects_removed;
            ns_tv_validations = !stats.Nw.ns_tv_validations + st.Nw.ns_tv_validations;
          }
      in
      let narrow_of hlir fields =
        let lil = Ir.Passes.optimize (Ir.Lil.of_hlir tu.Coredsl.Tast.elab ~fields hlir) in
        let lil', st = Nw.narrow_graph lil in
        Analysis.Verifier.verify ~level:`Lil lil';
        add st
      in
      List.iter
        (fun ti ->
          if Longnail.Flow.is_isax_instruction ti then
            narrow_of (Ir.Hlir.lower_instruction tu ti) ti.Coredsl.Tast.fields)
        tu.Coredsl.Tast.tinstrs;
      List.iter
        (fun ta -> narrow_of (Ir.Hlir.lower_always tu ta) [])
        tu.Coredsl.Tast.talways;
      (e.name, !stats))
    Isax.Registry.all

let test_narrow_bundled () =
  let per_isax = bundled_narrow_stats () in
  let nonzero =
    List.filter (fun (_, (st : Nw.stats)) -> st.Nw.ns_bits_removed > 0) per_isax
  in
  let render =
    String.concat ", "
      (List.map
         (fun (n, (st : Nw.stats)) -> Printf.sprintf "%s:%d" n st.Nw.ns_bits_removed)
         per_isax)
  in
  Alcotest.(check bool)
    (Printf.sprintf "narrowing fires in >= 3 ISAXes (%s)" render)
    true
    (List.length nonzero >= 3);
  (* every graph-changing run was translation-validated *)
  List.iter
    (fun (name, (st : Nw.stats)) ->
      if
        st.Nw.ns_ops_rewritten + st.Nw.ns_compares_folded + st.Nw.ns_selects_removed > 0
      then
        Alcotest.(check bool)
          (name ^ ": rewrites were TV-checked")
          true (st.Nw.ns_tv_validations > 0))
    per_isax

(* narrow on/off cosim equality: identical stimuli drive bit-identical
   responses across the full bundled grid on the reference core *)
let render_response (r : Longnail.Cosim.response) =
  let bv = function
    | Some (x, valid) -> Printf.sprintf "%s/%b" (Bitvec.to_hex_string x) valid
    | None -> "-"
  in
  Printf.sprintf "rd=%s pc=%s cust=[%s] memw=%s memr=%s cycles=%d" (bv r.rd_write)
    (bv r.pc_write)
    (String.concat ";"
       (List.map
          (fun (w : Longnail.Cosim.custreg_write) ->
            Printf.sprintf "%s[%s]=%s/%b" w.cw_reg
              (match w.cw_index with Some i -> string_of_int i | None -> "")
              (Bitvec.to_hex_string w.cw_data) w.cw_valid)
          r.custreg_writes))
    (match r.mem_write with
    | Some (a, d, v) -> Printf.sprintf "%x:%s/%b" a (Bitvec.to_hex_string d) v
    | None -> "-")
    (match r.mem_read_request with
    | Some (a, v) -> Printf.sprintf "%x/%b" a v
    | None -> "-")
    r.cycles

let test_narrow_cosim_equivalent () =
  let core = Scaiev.Datasheet.vexriscv in
  let u32 = u 32 in
  List.iter
    (fun (e : Isax.Registry.entry) ->
      let tu = Isax.Registry.compile e in
      let plain = Longnail.Flow.compile_request (Longnail.Flow.Request.make ()) core tu in
      let narrowed =
        Longnail.Flow.compile_request
          (Longnail.Flow.Request.make
             ~knobs:(Longnail.Flow.knobs ~narrow:true ())
             ())
          core tu
      in
      List.iter2
        (fun (a : Longnail.Flow.compiled_functionality)
             (b : Longnail.Flow.compiled_functionality) ->
          List.iteri
            (fun i (w1, w2) ->
              let stim =
                {
                  Longnail.Cosim.default_stimulus with
                  instr_word = Some (Bitvec.of_int u32 w1);
                  rs1 = Some (Bitvec.of_int u32 w2);
                  rs2 = Some (Bitvec.of_int u32 (w1 lxor w2));
                  pc = Some (Bitvec.of_int u32 0x400);
                }
              in
              let ra = Longnail.Cosim.run a stim and rb = Longnail.Cosim.run b stim in
              Alcotest.(check string)
                (Printf.sprintf "%s/%s stim %d traces equal" e.name a.cf_name i)
                (render_response ra) (render_response rb))
            [
              (0x0020_80EB, 0xDEADBEEF);
              (0x0020_80EB, 0x00000001);
              (0xFFFF_FFFF, 0x7FFFFFFF);
              (0x0000_0000, 0x0000_0000);
            ])
        plain.Longnail.Flow.funcs narrowed.Longnail.Flow.funcs)
    Isax.Registry.all

let () =
  Alcotest.run "analysis"
    [
      ( "verifier",
        [
          Alcotest.test_case "accepts all bundled graphs" `Slow test_verifier_accepts_bundled;
          Alcotest.test_case "rejects malformed graphs" `Quick test_verifier_rejects;
          Alcotest.test_case "catches pass corruption" `Quick test_verifier_catches_corruption;
        ] );
      ( "dataflow",
        [
          QCheck_alcotest.to_alcotest prop_ranges_exact;
          Alcotest.test_case "range_of_ty" `Quick test_range_of_ty;
          Alcotest.test_case "liveness" `Quick test_liveness;
          Alcotest.test_case "convergence bound" `Slow test_dataflow_converges;
          Alcotest.test_case "range widening" `Quick test_range_widening;
          Alcotest.test_case "reaching writes" `Quick test_reaching_writes;
        ] );
      ( "absint",
        [
          Alcotest.test_case "known bits basics" `Quick test_absint_basics;
          QCheck_alcotest.to_alcotest prop_absint_sound_comb;
          QCheck_alcotest.to_alcotest prop_absint_sound_hwarith;
        ] );
      ( "tv",
        [
          Alcotest.test_case "identity is exhaustive" `Quick test_tv_accepts_identity;
          Alcotest.test_case "injected miscompile (E0530)" `Quick test_tv_catches_miscompile;
          Alcotest.test_case "sampled miscompile (E0530)" `Quick
            test_tv_catches_miscompile_sampled;
        ] );
      ( "narrow",
        [
          Alcotest.test_case "bundled rewrites >= 3 ISAXes" `Slow test_narrow_bundled;
          Alcotest.test_case "cosim traces equal on/off" `Slow test_narrow_cosim_equivalent;
        ] );
      ( "lint",
        [
          Alcotest.test_case "catalog W1001..W1007" `Quick test_lint_catalog;
          Alcotest.test_case "bundled golden set" `Slow test_lint_bundled;
          Alcotest.test_case "werror promotion" `Quick test_lint_promote;
          Alcotest.test_case "codes registered" `Quick test_w_codes_registered;
        ] );
      ( "netcheck",
        [
          Alcotest.test_case "structural violations" `Quick test_netcheck;
          Alcotest.test_case "signal provenance" `Quick test_signal_provenance;
        ] );
      ( "verify-each",
        [ Alcotest.test_case "byte-identical grid" `Slow test_verify_each_equivalent ] );
    ]
