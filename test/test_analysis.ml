(* Tests for lib/analysis: the dialect-aware IR verifier, the dataflow
   framework, the CoreDSL linter and the netlist structural checks, plus
   the --verify-each sanitizer's no-observable-effect contract. *)

module M = Ir.Mir
module V = Analysis.Verifier
module D = Analysis.Dataflow
module L = Analysis.Lint
module N = Analysis.Netcheck
module Bn = Bitvec.Bn

let u = Bitvec.unsigned_ty

let codes ds = List.map (fun (d : Diag.t) -> d.Diag.code) ds

let has_code c ds = List.mem c (codes ds)

(* ---- helpers: hand-built graphs ---- *)

(* a well-formed straight-line HLIR graph: r = (a + b), set into X *)
let good_hlir () =
  let b = M.builder () in
  let a = M.add_op1 b "coredsl.get" [] (u 32) ~attrs:[ ("state", M.A_str "X") ] in
  let c = M.add_op1 b "hw.constant" [] (u 32) ~attrs:[ ("value", M.A_bv (Bitvec.of_int (u 32) 7)) ] in
  let s = M.add_op1 b "hwarith.add" [ a; c ] (u 33) in
  ignore (M.add_op b "coredsl.set" [ s ] [] ~attrs:[ ("state", M.A_str "ACC") ]);
  M.finish b ~name:"good" ~kind:`Instruction ()

let mk_graph body = { M.gname = "hand"; gkind = `Instruction; gattrs = []; body }

let mk_val vid ty = { M.vid; vty = ty; vhint = "" }

let mk_op ?(oid = 0) ?(attrs = []) ?(regions = []) opname operands results =
  { M.oid; opname; operands; results; attrs; regions; oloc = None }

(* ---- verifier: accepts every bundled graph at both levels ---- *)

let test_verifier_accepts_bundled () =
  List.iter
    (fun (e : Isax.Registry.entry) ->
      let tu = Isax.Registry.compile e in
      List.iter
        (fun ti ->
          if Longnail.Flow.is_isax_instruction ti then begin
            let hlir = Ir.Hlir.lower_instruction tu ti in
            Alcotest.(check (list string))
              (Printf.sprintf "%s/%s hlir clean" e.name ti.Coredsl.Tast.ti_name)
              [] (codes (V.check ~level:`Hlir hlir))
          end)
        tu.Coredsl.Tast.tinstrs;
      let c = Longnail.Flow.compile Scaiev.Datasheet.vexriscv tu in
      List.iter
        (fun (f : Longnail.Flow.compiled_functionality) ->
          Alcotest.(check (list string))
            (Printf.sprintf "%s/%s lil clean" e.name f.cf_name)
            [] (codes (V.check ~level:`Lil f.cf_lil));
          (* `Any infers the right level for both forms *)
          Alcotest.(check (list string))
            (Printf.sprintf "%s/%s any clean" e.name f.cf_name)
            []
            (codes (V.check f.cf_hlir) @ codes (V.check f.cf_lil)))
        c.Longnail.Flow.funcs)
    Isax.Registry.all

(* ---- verifier: rejects curated malformed graphs ---- *)

let expect_codes name expected g level =
  let got = codes (V.check ?level g) in
  List.iter
    (fun c ->
      Alcotest.(check bool) (Printf.sprintf "%s reports %s" name c) true (List.mem c got))
    expected

let test_verifier_rejects () =
  let v32 i = mk_val i (u 32) in
  (* unknown operation *)
  expect_codes "unknown op" [ "E0510" ]
    (mk_graph [ mk_op "hwarith.bogus" [] [ v32 0 ] ])
    (Some `Hlir);
  (* wrong arity: hwarith.add with one operand *)
  expect_codes "bad arity" [ "E0510" ]
    (mk_graph
       [
         mk_op "hw.constant" [] [ v32 0 ]
           ~attrs:[ ("value", M.A_bv (Bitvec.of_int (u 32) 1)) ];
         mk_op ~oid:1 "hwarith.add" [ v32 0 ] [ v32 1 ];
       ])
    (Some `Hlir);
  (* missing required attribute on hw.constant *)
  expect_codes "missing attr" [ "E0510" ]
    (mk_graph [ mk_op "hw.constant" [] [ v32 0 ] ])
    (Some `Hlir);
  (* comb width rule: operand widths must equal the result width *)
  expect_codes "comb width" [ "E0510" ]
    (mk_graph
       [
         mk_op "lil.read_rs1" [] [ v32 0 ];
         mk_op ~oid:1 "lil.read_rs2" [] [ mk_val 1 (u 16) ];
         mk_op ~oid:2 "comb.add" [ v32 0; mk_val 1 (u 16) ] [ v32 2 ];
         mk_op ~oid:3 "lil.write_rd" [ v32 2 ] [];
         mk_op ~oid:4 "lil.sink" [] [];
       ])
    (Some `Lil);
  (* unknown icmp predicate *)
  expect_codes "bad predicate" [ "E0510" ]
    (mk_graph
       [
         mk_op "coredsl.get" [] [ v32 0 ] ~attrs:[ ("state", M.A_str "X") ];
         mk_op ~oid:1 "hwarith.icmp" [ v32 0; v32 0 ]
           [ mk_val 1 (u 1) ]
           ~attrs:[ ("predicate", M.A_str "spaceship") ];
       ])
    (Some `Hlir);
  (* use before (or without) definition *)
  expect_codes "use before def" [ "E0511" ]
    (mk_graph [ mk_op "hwarith.not" [ v32 99 ] [ v32 0 ] ])
    (Some `Hlir);
  (* double definition *)
  expect_codes "double def" [ "E0511" ]
    (mk_graph
       [
         mk_op "coredsl.get" [] [ v32 0 ] ~attrs:[ ("state", M.A_str "X") ];
         mk_op ~oid:1 "coredsl.get" [] [ v32 0 ] ~attrs:[ ("state", M.A_str "X") ];
       ])
    (Some `Hlir);
  (* operand type disagrees with the defining result type *)
  expect_codes "type mismatch" [ "E0511" ]
    (mk_graph
       [
         mk_op "coredsl.get" [] [ v32 0 ] ~attrs:[ ("state", M.A_str "X") ];
         mk_op ~oid:1 "hwarith.not" [ mk_val 0 (u 8) ] [ mk_val 1 (u 8) ];
       ])
    (Some `Hlir);
  (* lil graph without the lil.sink terminator *)
  expect_codes "missing sink" [ "E0510" ]
    (mk_graph
       [ mk_op "lil.read_rs1" [] [ v32 0 ]; mk_op ~oid:1 "lil.write_rd" [ v32 0 ] [] ])
    (Some `Lil);
  (* dialect mixing: a hwarith op in a lil graph *)
  expect_codes "dialect mixing" [ "E0510" ]
    (mk_graph
       [
         mk_op "lil.read_rs1" [] [ v32 0 ];
         mk_op ~oid:1 "hwarith.not" [ v32 0 ] [ v32 1 ];
         mk_op ~oid:2 "lil.write_rd" [ v32 1 ] [];
         mk_op ~oid:3 "lil.sink" [] [];
       ])
    (Some `Lil);
  (* a good graph reports nothing *)
  Alcotest.(check (list string)) "good graph clean" [] (codes (V.check (good_hlir ())))

(* corrupting an optimized LIL graph must be caught at the `Lil level —
   the property the --verify-each sanitizer (E0512) relies on *)
let test_verifier_catches_corruption () =
  let tu = Isax.Registry.compile_by_name "dotprod" in
  let c = Longnail.Flow.compile Scaiev.Datasheet.vexriscv tu in
  let f = List.hd c.Longnail.Flow.funcs in
  let lil = f.Longnail.Flow.cf_lil in
  (* drop the terminator *)
  let no_sink =
    { lil with M.body = List.filter (fun (o : M.op) -> o.M.opname <> "lil.sink") lil.M.body }
  in
  Alcotest.(check bool) "dropped sink caught" true (has_code "E0510" (V.check ~level:`Lil no_sink));
  (* drop a mid-graph definition: its users now use an undefined value *)
  let dropped =
    let def =
      List.find (fun (o : M.op) -> o.M.results <> [] && o.M.opname <> "lil.sink") lil.M.body
    in
    { lil with M.body = List.filter (fun (o : M.op) -> o.M.oid <> def.M.oid) lil.M.body }
  in
  Alcotest.(check bool) "dangling use caught" true
    (V.check ~level:`Lil dropped <> [])

(* ---- dataflow ---- *)

(* ranges: on a constant-only graph the interval analysis is exact and
   must agree with native arithmetic *)
let prop_ranges_exact =
  QCheck.Test.make ~name:"range analysis is exact on constant graphs" ~count:100
    (QCheck.triple (QCheck.int_bound 0xFFFF) (QCheck.int_bound 0xFFFF) (QCheck.int_bound 2))
    (fun (a, b, sel) ->
      let bld = M.builder () in
      let ca =
        M.add_op1 bld "hw.constant" [] (u 32) ~attrs:[ ("value", M.A_bv (Bitvec.of_int (u 32) a)) ]
      in
      let cb =
        M.add_op1 bld "hw.constant" [] (u 32) ~attrs:[ ("value", M.A_bv (Bitvec.of_int (u 32) b)) ]
      in
      let opname = List.nth [ "hwarith.add"; "hwarith.sub"; "hwarith.mul" ] sel in
      (* signed result type: hwarith subtraction of unsigned operands can
         go negative, and the interval is clamped to the result type *)
      let r = M.add_op1 bld opname [ ca; cb ] (Bitvec.signed_ty 40) in
      ignore (M.add_op bld "coredsl.set" [ r ] [] ~attrs:[ ("state", M.A_str "ACC") ]);
      let g = M.finish bld ~name:"const" ~kind:`Instruction () in
      let res = D.run D.ranges g in
      let expect =
        match sel with 0 -> a + b | 1 -> a - b | _ -> a * b
      in
      match res.D.fact_of r with
      | Some rng -> (
          match D.range_exact rng with
          | Some v -> Bn.equal v (Bn.of_int expect)
          | None -> false)
      | None -> false)

let test_range_of_ty () =
  let r = D.range_of_ty (u 8) in
  Alcotest.(check string) "u8 lo" "0" (Bn.to_string r.D.lo);
  Alcotest.(check string) "u8 hi" "255" (Bn.to_string r.D.hi);
  let s = D.range_of_ty (Bitvec.signed_ty 8) in
  Alcotest.(check string) "s8 lo" "-128" (Bn.to_string s.D.lo);
  Alcotest.(check string) "s8 hi" "127" (Bn.to_string s.D.hi)

let test_liveness () =
  let bld = M.builder () in
  let a = M.add_op1 bld "coredsl.get" [] (u 32) ~attrs:[ ("state", M.A_str "ACC") ] in
  let live = M.add_op1 bld "hwarith.not" [ a ] (u 32) in
  let dead = M.add_op1 bld "hwarith.add" [ a; a ] (u 33) in
  ignore (M.add_op bld "coredsl.set" [ live ] [] ~attrs:[ ("state", M.A_str "ACC") ]);
  let g = M.finish bld ~name:"live" ~kind:`Instruction () in
  let res = D.run D.liveness g in
  Alcotest.(check bool) "feeds a set: live" true (res.D.fact_of live);
  Alcotest.(check bool) "transitively live" true (res.D.fact_of a);
  Alcotest.(check bool) "unused compute: dead" false (res.D.fact_of dead)

(* convergence: the engine's transfer count stays within a small multiple
   of the graph size on every bundled HLIR graph *)
let test_dataflow_converges () =
  List.iter
    (fun (e : Isax.Registry.entry) ->
      let tu = Isax.Registry.compile e in
      List.iter
        (fun ti ->
          if Longnail.Flow.is_isax_instruction ti then begin
            let g = Ir.Hlir.lower_instruction tu ti in
            let n = List.length (M.all_ops g) in
            let check_spec name spec =
              let res = D.run spec g in
              if res.D.iterations > 8 * (n + 1) then
                Alcotest.failf "%s/%s: %s took %d transfers for %d ops" e.name
                  ti.Coredsl.Tast.ti_name name res.D.iterations n
            in
            check_spec "ranges" D.ranges;
            check_spec "liveness" D.liveness
          end)
        tu.Coredsl.Tast.tinstrs)
    Isax.Registry.all

let test_reaching_writes () =
  let tu = Isax.Registry.compile_by_name "dotprod" in
  let ti =
    List.find (fun t -> Longnail.Flow.is_isax_instruction t) tu.Coredsl.Tast.tinstrs
  in
  let g = Ir.Hlir.lower_instruction tu ti in
  let writes = D.reaching_writes g in
  Alcotest.(check bool) "dotprod writes state" true (writes <> []);
  List.iter
    (fun (state, (op : M.op)) ->
      Alcotest.(check bool)
        (Printf.sprintf "write op %s is a set/store" op.M.opname)
        true
        (List.mem op.M.opname [ "coredsl.set"; "coredsl.store" ]);
      Alcotest.(check bool) "state name nonempty" true (state <> ""))
    writes

(* ---- linter ---- *)

(* a one-instruction unit around [behavior], in the fuzz-harness shape *)
let lint_src behavior =
  Printf.sprintf
    {|
import "RV32I.core_desc"
InstructionSet LINTME extends RV32I {
  instructions {
    LT {
      encoding: 7'd9 :: rs2[4:0] :: rs1[4:0] :: 3'b111 :: rd[4:0] :: 7'b1111011;
      behavior: {
%s
      }
    }
  }
}
|}
    behavior

let lint_of behavior =
  L.lint_unit (Coredsl.compile ~target:"LINTME" (lint_src behavior))

let expect_warning name behavior code =
  let ds = lint_of behavior in
  Alcotest.(check bool)
    (Printf.sprintf "%s emits %s (got: %s)" name code (String.concat "," (codes ds)))
    true (has_code code ds);
  List.iter
    (fun (d : Diag.t) ->
      Alcotest.(check bool) "severity is Warning" true (d.Diag.severity = Diag.Warning);
      Alcotest.(check bool) "code registered" true (Diag.is_registered d.Diag.code))
    ds

let test_lint_catalog () =
  (* W1001: a computed value never used *)
  expect_warning "dead assignment"
    {|unsigned<32> a = X[rs1];
      unsigned<32> t = (unsigned<32>)(a * a);
      if (rd != 0) X[rd] = a;|}
    "W1001";
  (* W1002: rs2 appears in the encoding but never in the behavior *)
  expect_warning "unused field" {|if (rd != 0) X[rd] = X[rs1];|} "W1002";
  (* W1004: a provably constant branch condition (literal comparisons are
     folded by the front end, so compare a 5-bit field against 100 —
     only the range analysis can see that rd <= 31) *)
  expect_warning "constant condition"
    {|unsigned<32> a = X[rs1];
      if (rd > 100) { a = (unsigned<32>)(a + X[rs2]); }
      if (rd != 0) X[rd] = a;|}
    "W1004";
  (* W1005: shift amount provably >= the operand width *)
  expect_warning "oversized shift"
    {|unsigned<32> a = X[rs1];
      if (rd != 0) X[rd] = (unsigned<32>)((a << 40) + X[rs2]);|}
    "W1005";
  (* W1006: a local read before any assignment *)
  expect_warning "read before assign"
    {|unsigned<32> t;
      unsigned<32> a = (unsigned<32>)(t + X[rs1]);
      if (rd != 0) X[rd] = (unsigned<32>)(a + X[rs2]);|}
    "W1006";
  (* W1007: the instruction writes no architectural state at all *)
  expect_warning "writes nothing" {|unsigned<32> a = (unsigned<32>)(X[rs1] + X[rs2]);|}
    "W1007"

(* the bundled ISAXes have a small, known warning set (the checked-in
   docs/LINT_GOLDEN.txt contract, asserted here in-process) *)
let test_lint_bundled () =
  let expect = [ ("sparkle", 2); ("sqrt_tightly", 1); ("sqrt_decoupled", 1) ] in
  List.iter
    (fun (e : Isax.Registry.entry) ->
      let ds = L.lint_unit (Isax.Registry.compile e) in
      let n = match List.assoc_opt e.name expect with Some n -> n | None -> 0 in
      Alcotest.(check int)
        (Printf.sprintf "%s warning count (got: %s)" e.name (String.concat "," (codes ds)))
        n (List.length ds);
      List.iter
        (fun (d : Diag.t) ->
          Alcotest.(check bool) "is W1001" true (d.Diag.code = "W1001");
          Alcotest.(check bool) "has span" true (d.Diag.span <> None))
        ds)
    Isax.Registry.all

let test_lint_promote () =
  let ds = L.lint_unit (Isax.Registry.compile_by_name "sparkle") in
  Alcotest.(check bool) "sparkle warns" true (ds <> []);
  List.iter
    (fun (d : Diag.t) ->
      Alcotest.(check bool) "promoted to Error" true (d.Diag.severity = Diag.Error))
    (L.promote ds)

let test_w_codes_registered () =
  List.iter
    (fun (code, _) ->
      Alcotest.(check bool) (code ^ " registered") true (Diag.is_registered code))
    L.lint_codes;
  Alcotest.(check bool) "catalog covers W1001..W1007" true
    (List.for_all
       (fun c -> List.mem_assoc c L.lint_codes)
       [ "W1001"; "W1002"; "W1003"; "W1004"; "W1005"; "W1006"; "W1007" ])

(* ---- netlist checks ---- *)

let comb ~out ~width ~op inputs = Rtl.Netlist.Comb { out; width; op; attrs = []; inputs }

let port name width = { Rtl.Netlist.port_name = name; port_width = width; port_signal = name }

let test_netcheck () =
  let base ~nodes ~outputs =
    { Rtl.Netlist.mod_name = "T"; inputs = [ port "i" 8 ]; outputs; nodes }
  in
  (* clean: i -> not -> o *)
  let clean =
    base
      ~nodes:[ comb ~out:"n" ~width:8 ~op:"comb.xor" [ "i"; "i" ] ]
      ~outputs:[ { Rtl.Netlist.port_name = "o"; port_width = 8; port_signal = "n" } ]
  in
  Alcotest.(check (list string)) "clean netlist" [] (codes (N.check clean));
  (* multiple drivers: two nodes share an output name *)
  let multi =
    base
      ~nodes:
        [
          comb ~out:"n" ~width:8 ~op:"comb.xor" [ "i"; "i" ];
          comb ~out:"n" ~width:8 ~op:"comb.and" [ "i"; "i" ];
        ]
      ~outputs:[ { Rtl.Netlist.port_name = "o"; port_width = 8; port_signal = "n" } ]
  in
  Alcotest.(check bool) "multiple drivers" true (has_code "E0520" (N.check multi));
  (* a node shadowing an input port is also a double drive *)
  let shadow =
    base
      ~nodes:[ comb ~out:"i" ~width:8 ~op:"comb.xor" [ "i"; "i" ] ]
      ~outputs:[ { Rtl.Netlist.port_name = "o"; port_width = 8; port_signal = "i" } ]
  in
  Alcotest.(check bool) "input shadowed" true (has_code "E0520" (N.check shadow));
  (* undefined signal *)
  let undef =
    base
      ~nodes:[ comb ~out:"n" ~width:8 ~op:"comb.xor" [ "i"; "ghost" ] ]
      ~outputs:[ { Rtl.Netlist.port_name = "o"; port_width = 8; port_signal = "n" } ]
  in
  Alcotest.(check bool) "undefined signal" true (has_code "E0522" (N.check undef));
  (* combinational cycle a -> b -> a, with the path in the message *)
  let cyc =
    base
      ~nodes:
        [
          comb ~out:"a" ~width:8 ~op:"comb.xor" [ "b"; "i" ];
          comb ~out:"b" ~width:8 ~op:"comb.xor" [ "a"; "i" ];
        ]
      ~outputs:[ { Rtl.Netlist.port_name = "o"; port_width = 8; port_signal = "a" } ]
  in
  let ds = N.check cyc in
  Alcotest.(check bool) "cycle found" true (has_code "E0521" ds);
  let d = List.find (fun (d : Diag.t) -> d.Diag.code = "E0521") ds in
  let mentions s =
    let msg = d.Diag.message in
    let nl = String.length s and hl = String.length msg in
    let rec go i = i + nl <= hl && (String.sub msg i nl = s || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "path names the signals" true (mentions "a" && mentions "b");
  (* the same loop broken by a register is not a combinational cycle *)
  let through_reg =
    base
      ~nodes:
        [
          comb ~out:"a" ~width:8 ~op:"comb.xor" [ "r"; "i" ];
          Rtl.Netlist.Reg { out = "r"; width = 8; next = "a"; enable = None; init = None };
        ]
      ~outputs:[ { Rtl.Netlist.port_name = "o"; port_width = 8; port_signal = "a" } ]
  in
  Alcotest.(check (list string)) "register breaks the cycle" [] (codes (N.check through_reg));
  (* verify raises on the first violation *)
  (match N.check multi with
  | d0 :: _ -> (
      try
        N.verify multi;
        Alcotest.fail "verify did not raise"
      with N.Netcheck_error d -> Alcotest.(check string) "first violation" d0.Diag.code d.Diag.code)
  | [] -> Alcotest.fail "expected violations")

let test_signal_provenance () =
  let tu = Isax.Registry.compile_by_name "dotprod" in
  let c = Longnail.Flow.compile Scaiev.Datasheet.vexriscv tu in
  let f = List.hd c.Longnail.Flow.funcs in
  let lil = f.Longnail.Flow.cf_lil in
  (* every hwgen signal named after an SSA value with a recorded span
     resolves; unknown names do not *)
  let resolved = ref 0 in
  List.iter
    (fun node ->
      match N.signal_provenance lil (Rtl.Netlist.node_out node) with
      | Some sp ->
          incr resolved;
          Alcotest.(check bool) "span valid" true (Diag.span_is_valid sp)
      | None -> ())
    f.Longnail.Flow.cf_hw.Longnail.Hwgen.netlist.Rtl.Netlist.nodes;
  Alcotest.(check bool) "some signals have provenance" true (!resolved > 0);
  Alcotest.(check bool) "unknown name has none" true (N.signal_provenance lil "clk" = None)

(* ---- the --verify-each sanitizer ---- *)

(* byte-identical SV and YAML with and without the sanitizer, over the
   full bundled ISAX x core grid (the acceptance contract; three combos
   are re-checked from the CLI by scripts/check_verify_each.sh) *)
let test_verify_each_equivalent () =
  List.iter
    (fun (core : Scaiev.Datasheet.t) ->
      List.iter
        (fun (e : Isax.Registry.entry) ->
          let tu = Isax.Registry.compile e in
          let plain =
            Longnail.Flow.compile_request (Longnail.Flow.Request.make ()) core tu
          in
          let checked =
            Longnail.Flow.compile_request
              (Longnail.Flow.Request.make ~verify_each:true ())
              core tu
          in
          let what = Printf.sprintf "%s on %s" e.name core.Scaiev.Datasheet.core_name in
          Alcotest.(check string) (what ^ ": yaml equal")
            plain.Longnail.Flow.config_yaml checked.Longnail.Flow.config_yaml;
          List.iter2
            (fun (a : Longnail.Flow.compiled_functionality)
                 (b : Longnail.Flow.compiled_functionality) ->
              Alcotest.(check string)
                (Printf.sprintf "%s/%s: sv equal" what a.cf_name)
                a.cf_sv b.cf_sv)
            plain.Longnail.Flow.funcs checked.Longnail.Flow.funcs)
        Isax.Registry.all)
    (Scaiev.Core_registry.datasheets ())

let () =
  Alcotest.run "analysis"
    [
      ( "verifier",
        [
          Alcotest.test_case "accepts all bundled graphs" `Slow test_verifier_accepts_bundled;
          Alcotest.test_case "rejects malformed graphs" `Quick test_verifier_rejects;
          Alcotest.test_case "catches pass corruption" `Quick test_verifier_catches_corruption;
        ] );
      ( "dataflow",
        [
          QCheck_alcotest.to_alcotest prop_ranges_exact;
          Alcotest.test_case "range_of_ty" `Quick test_range_of_ty;
          Alcotest.test_case "liveness" `Quick test_liveness;
          Alcotest.test_case "convergence bound" `Slow test_dataflow_converges;
          Alcotest.test_case "reaching writes" `Quick test_reaching_writes;
        ] );
      ( "lint",
        [
          Alcotest.test_case "catalog W1001..W1007" `Quick test_lint_catalog;
          Alcotest.test_case "bundled golden set" `Slow test_lint_bundled;
          Alcotest.test_case "werror promotion" `Quick test_lint_promote;
          Alcotest.test_case "codes registered" `Quick test_w_codes_registered;
        ] );
      ( "netcheck",
        [
          Alcotest.test_case "structural violations" `Quick test_netcheck;
          Alcotest.test_case "signal provenance" `Quick test_signal_provenance;
        ] );
      ( "verify-each",
        [ Alcotest.test_case "byte-identical grid" `Slow test_verify_each_equivalent ] );
    ]
