(* Tests for the content-addressed compilation sessions (lib/cache +
   Longnail.Flow sessions): fingerprint determinism and sensitivity,
   store semantics, and the acceptance gates of docs/CACHING.md —
   recompiles served from cache and byte-identical artifacts with and
   without caching. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ---- the generic store ---- *)

let test_store_hit_miss () =
  let st = Cache.Store.create ~name:"t" () in
  let calls = ref 0 in
  let compute () = incr calls; 42 in
  check_int "miss computes" 42 (Cache.Store.find_or_add st "k" compute);
  check_int "hit returns" 42 (Cache.Store.find_or_add st "k" compute);
  check_int "computed once" 1 !calls;
  let s = Cache.Store.stats st in
  check_int "hits" 1 s.hits;
  check_int "misses" 1 s.misses;
  check_int "stores" 1 s.stores;
  check_int "length" 1 (Cache.Store.length st);
  check_bool "mem" true (Cache.Store.mem st "k");
  check_bool "not mem" false (Cache.Store.mem st "other")

let test_store_raise_not_stored () =
  let st = Cache.Store.create ~name:"t" () in
  (try ignore (Cache.Store.find_or_add st "k" (fun () -> failwith "boom"))
   with Failure _ -> ());
  check_bool "nothing stored on raise" false (Cache.Store.mem st "k");
  check_int "still a miss" 1 (Cache.Store.stats st).misses;
  check_int "no store" 0 (Cache.Store.stats st).stores

let test_store_lru_eviction () =
  let st = Cache.Store.create ~capacity:2 ~name:"t" () in
  ignore (Cache.Store.find_or_add st "a" (fun () -> 1));
  ignore (Cache.Store.find_or_add st "b" (fun () -> 2));
  ignore (Cache.Store.find_or_add st "a" (fun () -> 1));
  (* "b" is now least recently used; inserting "c" must evict it *)
  ignore (Cache.Store.find_or_add st "c" (fun () -> 3));
  check_bool "a survives" true (Cache.Store.mem st "a");
  check_bool "b evicted" false (Cache.Store.mem st "b");
  check_bool "c present" true (Cache.Store.mem st "c");
  check_int "one eviction" 1 (Cache.Store.stats st).evictions;
  check_int "at capacity" 2 (Cache.Store.length st)

let test_store_disabled () =
  let st = Cache.Store.create ~capacity:0 ~name:"t" () in
  let calls = ref 0 in
  let compute () = incr calls; 7 in
  ignore (Cache.Store.find_or_add st "k" compute);
  ignore (Cache.Store.find_or_add st "k" compute);
  check_int "always recomputes" 2 !calls;
  check_int "never stores" 0 (Cache.Store.stats st).stores;
  check_int "never hits" 0 (Cache.Store.stats st).hits;
  check_int "empty" 0 (Cache.Store.length st)

let test_store_obs_counters () =
  let st = Cache.Store.create ~name:"t" () in
  let obs = Obs.create ~name:"test" () in
  Obs.span obs "lookup" (fun sobs ->
      ignore (Cache.Store.find_or_add st ~obs:sobs "k" (fun () -> 1));
      ignore (Cache.Store.find_or_add st ~obs:sobs "k" (fun () -> 1)));
  Obs.finish obs;
  let sp = List.hd (Obs.find_spans (Obs.root obs) "lookup") in
  check_int "cache.hit" 1 (Option.get (Obs.get_int sp "cache.hit"));
  check_int "cache.miss" 1 (Option.get (Obs.get_int sp "cache.miss"));
  check_int "cache.store" 1 (Option.get (Obs.get_int sp "cache.store"))

(* ---- fingerprint determinism and sensitivity ---- *)

(* two independent elaborations of the same source (fresh typed-unit
   values, different source spans object identity) must agree *)
let test_tunit_fp_deterministic () =
  List.iter
    (fun (e : Isax.Registry.entry) ->
      let fp1 = Cache.Fp.tunit (Isax.Registry.compile e) in
      let fp2 = Cache.Fp.tunit (Isax.Registry.compile e) in
      check_str (e.name ^ " deterministic") fp1 fp2)
    Isax.Registry.all

(* source locations must not contribute: the same unit elaborated under a
   different file name fingerprints identically *)
let test_tunit_fp_ignores_locations () =
  let e = List.hd Isax.Registry.all in
  let tu1 = Coredsl.compile ~provider:Isax.Registry.provider ~file:"a.core_desc" ~target:e.target e.source in
  let tu2 = Coredsl.compile ~provider:Isax.Registry.provider ~file:"b.core_desc" ~target:e.target e.source in
  check_str "file name irrelevant" (Cache.Fp.tunit tu1) (Cache.Fp.tunit tu2)

(* any semantic edit must change the fingerprint *)
let test_tunit_fp_source_sensitivity () =
  let src constant =
    Printf.sprintf
      {|import "RV32I.core_desc"

        InstructionSet Tiny extends RV32I {
          instructions {
            TINY {
              encoding: imm[11:0] :: rs1[4:0] :: 3'b001 :: rd[4:0] :: 7'b0001011;
              behavior: { if (rd != 0) X[rd] = (unsigned<32>)(X[rs1] + %s); }
            }
          }
        }|}
      constant
  in
  let fp constant =
    Cache.Fp.tunit
      (Coredsl.compile ~provider:Isax.Registry.provider ~file:"tiny.core_desc" ~target:"Tiny"
         (src constant))
  in
  check_str "identical source agrees" (fp "1") (fp "1");
  check_bool "edited literal differs" false (fp "1" = fp "2")

(* golden digests: any unintended change to the canonical serialization
   (or to a bundled ISAX) shows up as a diff here. Regenerate with the
   printf below when the change is deliberate. *)
let test_tunit_fp_golden () =
  let goldens =
    [
      ("autoinc", "bb40229e3db54dc42382c1d3d3ef78f0");
      ("dotprod", "cfbf6118cc8261aa0f923c9a2b76e1a3");
      ("ijmp", "e1babea7a443b0744cd9ca87bea9aa8d");
      ("sbox", "4e27102d023487ef31d6982849fae598");
      ("sparkle", "03aa171c7665e50e39cd2d5c720607d2");
      ("sqrt_tightly", "f01475cbdc6a9201bf60d92256cd5275");
      ("sqrt_decoupled", "4497cbaabe85805eeadc1bfec0cfe288");
      ("zol", "7eeef67145714948d060e637baf6739c");
      ("chksum", "d034f8bb5603d68e3e562706897a528e");
      ("autoinc+zol", "b1fb71a5a2060e970c2bf80680a43546");
    ]
  in
  List.iter
    (fun (e : Isax.Registry.entry) ->
      check_str (e.name ^ " golden digest") (List.assoc e.name goldens)
        (Cache.Fp.tunit (Isax.Registry.compile e)))
    Isax.Registry.all

(* MIR fingerprints must be invariant under alpha-renaming of SSA value
   ids but sensitive to structure *)
let test_graph_fp_alpha_invariant () =
  let tu = Isax.Registry.compile_by_name "dotprod" in
  List.iter
    (fun (ti : Coredsl.Tast.tinstr) ->
      let g = Ir.Hlir.lower_instruction tu ti in
      let renamed = Ir.Mir.renumber_values g ~f:(fun vid -> vid + 1000) in
      check_str (ti.ti_name ^ " alpha-invariant") (Cache.Fp.graph g) (Cache.Fp.graph renamed);
      let relabeled = { g with Ir.Mir.gname = g.Ir.Mir.gname ^ "_x" } in
      check_bool (ti.ti_name ^ " name-sensitive") false
        (Cache.Fp.graph g = Cache.Fp.graph relabeled))
    tu.tinstrs

let test_datasheet_fp_distinct () =
  (* every registered core, outlook included: a colliding fingerprint
     would let one core's artifacts serve another's compiles *)
  let fps =
    List.map Cache.Fp.datasheet (Scaiev.Core_registry.datasheets ~include_outlook:true ())
  in
  let distinct = List.sort_uniq compare fps in
  check_int "all registered cores fingerprint distinctly" (List.length fps)
    (List.length distinct);
  check_str "deterministic"
    (Cache.Fp.datasheet Scaiev.Datasheet.vexriscv)
    (Cache.Fp.datasheet Scaiev.Datasheet.vexriscv)

(* The registry refactor must not move a single artifact byte for the
   four paper cores: one digest per core over every bundled ISAX's
   emitted SystemVerilog + SCAIE-V YAML, pinned to the values produced
   by the pre-registry tree. (mriscv is deliberately not pinned here —
   its datasheet is ours to tune — but the paper cores are contracts.) *)
let paper_core_golden =
  [
    ("ORCA", "46e53df7617a651544ed5abc3090264a");
    ("Piccolo", "4a0e19ddd852ffb8cf2f10a27ab71f06");
    ("PicoRV32", "956a3788cf0eeaa47afc4750eb150319");
    ("VexRiscv", "8a326db4713dcbf06bfe82ef764d24c1");
  ]

let test_paper_core_artifacts_golden () =
  let session = Longnail.Flow.create_session () in
  let request = Longnail.Flow.Request.make ~session () in
  List.iter
    (fun (core : Scaiev.Datasheet.t) ->
      let buf = Buffer.create (1 lsl 16) in
      List.iter
        (fun (e : Isax.Registry.entry) ->
          let c = Longnail.Flow.compile_request request core (Isax.Registry.compile e) in
          Buffer.add_string buf e.name;
          List.iter
            (fun (f : Longnail.Flow.compiled_functionality) ->
              Buffer.add_string buf f.cf_name;
              Buffer.add_string buf f.cf_sv)
            c.funcs;
          Buffer.add_string buf c.config_yaml)
        Isax.Registry.all;
      check_str
        (core.core_name ^ " artifacts byte-identical")
        (List.assoc core.core_name paper_core_golden)
        (Digest.to_hex (Digest.string (Buffer.contents buf))))
    (Scaiev.Core_registry.paper_datasheets ())

(* ---- sessions ---- *)

(* recompiling an identical target within a session is served entirely
   from the target store: the physically identical value comes back and
   no per-functionality work re-runs *)
let test_session_recompile_from_cache () =
  let session = Longnail.Flow.create_session () in
  let tu = Isax.Registry.compile_by_name "dotprod" in
  let core = Scaiev.Datasheet.vexriscv in
  let request = Longnail.Flow.Request.make ~session () in
  let c1 = Longnail.Flow.compile ~request core tu in
  let c2 = Longnail.Flow.compile ~request core tu in
  check_bool "identical artifact returned" true (c1 == c2);
  let stats = Longnail.Flow.session_stats session in
  check_int "target hit" 1 (List.assoc "target" stats).Cache.Store.hits;
  check_int "ir computed once" 1 (List.assoc "ir" stats).Cache.Store.misses;
  check_int "ir not re-entered" 0 (List.assoc "ir" stats).Cache.Store.hits;
  check_int "sched computed once" 1 (List.assoc "sched" stats).Cache.Store.misses

(* a re-parsed unit (same source, fresh typed-unit value) hits the same
   artifacts: keys are content-addressed, not identity-addressed *)
let test_session_content_addressed () =
  let session = Longnail.Flow.create_session () in
  let core = Scaiev.Datasheet.vexriscv in
  let request = Longnail.Flow.Request.make ~session () in
  let c1 = Longnail.Flow.compile ~request core (Isax.Registry.compile_by_name "dotprod") in
  let c2 = Longnail.Flow.compile ~request core (Isax.Registry.compile_by_name "dotprod") in
  check_bool "re-parse still hits" true (c1 == c2)

(* cached and uncached compiles must produce byte-identical SystemVerilog
   and SCAIE-V YAML for every bundled ISAX x core target *)
let test_cached_equals_uncached_everywhere () =
  let session = Longnail.Flow.create_session () in
  let request = Longnail.Flow.Request.make ~session () in
  List.iter
    (fun (e : Isax.Registry.entry) ->
      List.iter
        (fun core ->
          (* warm the session with an independently parsed unit... *)
          ignore (Longnail.Flow.compile ~request core (Isax.Registry.compile e));
          (* ...then serve this compile from cache and compare against a
             sessionless (always-cold) compile of a fresh parse *)
          let cached = Longnail.Flow.compile ~request core (Isax.Registry.compile e) in
          let cold = Longnail.Flow.compile core (Isax.Registry.compile e) in
          let ctx = Printf.sprintf "%s/%s" e.name core.Scaiev.Datasheet.core_name in
          check_str (ctx ^ " config yaml") cold.config_yaml cached.config_yaml;
          check_int (ctx ^ " func count") (List.length cold.funcs) (List.length cached.funcs);
          List.iter2
            (fun (a : Longnail.Flow.compiled_functionality)
                 (b : Longnail.Flow.compiled_functionality) ->
              check_str (ctx ^ "/" ^ a.cf_name ^ " sv") a.cf_sv b.cf_sv)
            cold.funcs cached.funcs)
        (Scaiev.Core_registry.datasheets ()))
    Isax.Registry.all

(* knob granularity: the hazard-handling ablation shares every
   per-functionality artifact and only re-runs the adapter *)
let test_session_hazard_shares_funcs () =
  let session = Longnail.Flow.create_session () in
  let tu = Isax.Registry.compile_by_name "sqrt_decoupled" in
  let core = Scaiev.Datasheet.vexriscv in
  let c1 = Longnail.Flow.compile ~request:(Longnail.Flow.Request.make ~session ()) core tu in
  let c2 =
    Longnail.Flow.compile
      ~request:(Longnail.Flow.Request.make ~session ~hazard_handling:false ())
      core tu
  in
  check_bool "distinct targets" true (c1 != c2);
  let stats = Longnail.Flow.session_stats session in
  check_int "no target hit" 0 (List.assoc "target" stats).Cache.Store.hits;
  let sched = List.assoc "sched" stats in
  check_bool "sched artifacts shared" true (sched.Cache.Store.hits > 0);
  List.iter2
    (fun (a : Longnail.Flow.compiled_functionality) b ->
      check_bool (a.Longnail.Flow.cf_name ^ " functionality shared") true (a == b))
    c1.funcs c2.funcs

(* distinct knobs must not collide *)
let test_session_knob_isolation () =
  let session = Longnail.Flow.create_session () in
  let tu = Isax.Registry.compile_by_name "dotprod" in
  let core = Scaiev.Datasheet.vexriscv in
  let req k = Longnail.Flow.Request.make ~session ?scheduler:k () in
  let a = Longnail.Flow.compile ~request:(req (Some Longnail.Sched_build.Ilp)) core tu in
  let b = Longnail.Flow.compile ~request:(req (Some Longnail.Sched_build.Asap)) core tu in
  check_bool "different schedulers, different artifacts" true (a != b);
  let c =
    Longnail.Flow.compile
      ~request:(Longnail.Flow.Request.make ~session ~cycle_time:7.0 ())
      core tu
  in
  check_bool "different cycle time, different artifact" true (a != c && b != c)

(* the simulation-engine and emission-backend knobs are cache keys too:
   switching either must produce fresh artifacts, never replay the other
   configuration's *)
let test_session_engine_backend_isolation () =
  let session = Longnail.Flow.create_session () in
  let tu = Isax.Registry.compile_by_name "sqrt_decoupled" in
  let core = Scaiev.Datasheet.vexriscv in
  let a = Longnail.Flow.compile ~request:(Longnail.Flow.Request.make ~session ()) core tu in
  let b =
    Longnail.Flow.compile
      ~request:
        (Longnail.Flow.Request.make ~session
           ~knobs:(Longnail.Flow.knobs ~sim_engine:Rtl.Engine.Interp ())
           ())
      core tu
  in
  let c =
    Longnail.Flow.compile
      ~request:
        (Longnail.Flow.Request.make ~session
           ~knobs:(Longnail.Flow.knobs ~backend:Rtl.Backend.V2001 ())
           ())
      core tu
  in
  check_bool "engine keyed" true (a != b);
  check_bool "backend keyed" true (a != c && b != c);
  let text (t : Longnail.Flow.compiled) =
    String.concat "" (List.map (fun (f : Longnail.Flow.compiled_functionality) -> f.cf_sv) t.funcs)
  in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "sv registers use always_ff" true (contains (text a) "always_ff");
  check_bool "v2001 registers avoid always_ff" true (not (contains (text c) "always_ff"));
  check_bool "v2001 registers use plain always" true
    (contains (text c) "always @(posedge clk)")

let test_compile_many_shares () =
  let session = Longnail.Flow.create_session () in
  let tu = Isax.Registry.compile_by_name "dotprod" in
  let cores = [ Scaiev.Datasheet.vexriscv; Scaiev.Datasheet.orca ] in
  let results =
    Longnail.Flow.compile_many
      ~request:(Longnail.Flow.Request.make ~session ())
      (List.map (fun core -> (core, tu)) cores)
  in
  check_int "one compiled per target" 2 (List.length results);
  let stats = Longnail.Flow.session_stats session in
  let ir = List.assoc "ir" stats in
  (* the unit's functionality lowers once; the second core re-uses it *)
  check_int "ir computed once" 1 ir.Cache.Store.misses;
  check_bool "ir shared across cores" true (ir.Cache.Store.hits > 0)

let test_frontend_memo () =
  let session = Longnail.Flow.create_session () in
  let calls = ref 0 in
  let parse () = incr calls; Isax.Registry.compile_by_name "dotprod" in
  let tu1 = Longnail.Flow.frontend session ~key:"k1" parse in
  let tu2 = Longnail.Flow.frontend session ~key:"k1" parse in
  check_bool "same unit back" true (tu1 == tu2);
  check_int "parsed once" 1 !calls;
  ignore (Longnail.Flow.frontend session ~key:"k2" parse);
  check_int "new key parses" 2 !calls

(* ---- the on-disk artifact store ---- *)

let tmpdir () =
  let d = Filename.temp_file "longnail-disk" "" in
  Sys.remove d;
  Sys.mkdir d 0o700;
  d

let art_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".art")

let test_disk_roundtrip_across_processes () =
  let root = tmpdir () in
  let d1 = Cache.Disk.open_store root in
  check_bool "cold miss" true (Cache.Disk.find d1 "k1" = None);
  Cache.Disk.store d1 "k1" "payload-one";
  check_bool "same handle hit" true (Cache.Disk.find d1 "k1" = Some "payload-one");
  (* a second handle on the same directory models a fresh process *)
  let d2 = Cache.Disk.open_store root in
  check_bool "fresh process hit" true (Cache.Disk.find d2 "k1" = Some "payload-one");
  check_int "fresh process entries" 1 (Cache.Disk.length d2);
  let s = Cache.Disk.stats d2 in
  check_int "fresh hits" 1 s.Cache.Disk.hits;
  check_int "fresh misses" 0 s.Cache.Disk.misses

let test_disk_eviction_respects_budget () =
  let payload = String.make 1024 'x' in
  (* room for roughly two 1 KiB entries plus headers *)
  let root = tmpdir () in
  let d = Cache.Disk.open_store ~budget_bytes:2600 root in
  Cache.Disk.store d "a" payload;
  Cache.Disk.store d "b" payload;
  Cache.Disk.store d "c" payload;
  let s = Cache.Disk.stats d in
  check_bool "bytes within budget" true (s.Cache.Disk.bytes <= 2600);
  check_bool "something evicted" true (s.Cache.Disk.evictions > 0);
  (* the entry just written always survives its own store *)
  check_bool "latest entry survives" true (Cache.Disk.find d "c" = Some payload);
  (* a reopened store sees the same accounting *)
  let d2 = Cache.Disk.open_store ~budget_bytes:2600 root in
  check_int "reopen entries" (Cache.Disk.length d) (Cache.Disk.length d2)

let test_disk_no_partial_files () =
  let root = tmpdir () in
  let d = Cache.Disk.open_store root in
  for i = 0 to 19 do
    Cache.Disk.store d (Printf.sprintf "key%d" i) (String.make 4096 (Char.chr (65 + i)))
  done;
  let stray =
    Sys.readdir (Cache.Disk.dir d) |> Array.to_list
    |> List.filter (fun f -> not (Filename.check_suffix f ".art"))
  in
  Alcotest.(check (list string)) "no temp/partial files" [] stray;
  check_int "all entries published" 20 (List.length (art_files (Cache.Disk.dir d)))

let rewrite_entry_file path f =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (f contents);
  close_out oc

let test_disk_version_mismatch_invalidates () =
  let root = tmpdir () in
  let d = Cache.Disk.open_store root in
  Cache.Disk.store d "vk" "vpayload";
  let dir = Cache.Disk.dir d in
  let file = Filename.concat dir (List.hd (art_files dir)) in
  (* forge a future format version in the header: the entry must be
     rejected and healed, never misread *)
  rewrite_entry_file file (fun s ->
      let nl = String.index s '\n' in
      Printf.sprintf "longnail-artifact %d%s" (Cache.Disk.format_version + 1)
        (String.sub s nl (String.length s - nl)));
  check_bool "wrong version reads as miss" true (Cache.Disk.find d "vk" = None);
  let s = Cache.Disk.stats d in
  check_int "counted corrupt" 1 s.Cache.Disk.corrupt;
  check_int "evicted from disk" 0 (List.length (art_files dir));
  (* the store heals: a fresh write round-trips again *)
  Cache.Disk.store d "vk" "vpayload2";
  check_bool "healed" true (Cache.Disk.find d "vk" = Some "vpayload2")

let test_disk_corrupt_payload_evicted () =
  let root = tmpdir () in
  let d = Cache.Disk.open_store root in
  Cache.Disk.store d "ck" "corrupt-me-please";
  let dir = Cache.Disk.dir d in
  let file = Filename.concat dir (List.hd (art_files dir)) in
  rewrite_entry_file file (fun s ->
      let b = Bytes.of_string s in
      let i = String.length s - 3 in
      Bytes.set b i (if Bytes.get b i = 'z' then 'y' else 'z');
      Bytes.to_string b);
  check_bool "checksum mismatch reads as miss" true (Cache.Disk.find d "ck" = None);
  check_int "counted corrupt" 1 (Cache.Disk.stats d).Cache.Disk.corrupt;
  check_int "evicted" 0 (List.length (art_files dir));
  (* truncation is also survived *)
  Cache.Disk.store d "ck" "corrupt-me-please";
  let file = Filename.concat dir (List.hd (art_files dir)) in
  rewrite_entry_file file (fun s -> String.sub s 0 (String.length s / 2));
  check_bool "truncated reads as miss" true (Cache.Disk.find d "ck" = None);
  check_int "truncation counted corrupt" 2 (Cache.Disk.stats d).Cache.Disk.corrupt

let test_disk_concurrent_writers () =
  let root = tmpdir () in
  let d = Cache.Disk.open_store root in
  let n = 50 in
  let writer salt () =
    let d' = Cache.Disk.open_store root in
    for i = 0 to n - 1 do
      (* overlapping key space, identical content per key: the
         cross-process reality of content-addressed artifacts *)
      let key = Printf.sprintf "shared%d" i in
      Cache.Disk.store d' key (Printf.sprintf "payload-%d" i);
      ignore (Cache.Disk.find d' key);
      ignore salt
    done
  in
  let d1 = Domain.spawn (writer 1) and d2 = Domain.spawn (writer 2) in
  Domain.join d1;
  Domain.join d2;
  (* every entry must read back valid — no torn writes *)
  for i = 0 to n - 1 do
    let key = Printf.sprintf "shared%d" i in
    check_bool key true (Cache.Disk.find d key = Some (Printf.sprintf "payload-%d" i))
  done;
  check_int "no corruption seen" 0 (Cache.Disk.stats d).Cache.Disk.corrupt

let test_disk_backed_session_outputs () =
  let root = tmpdir () in
  let tu = Isax.Registry.compile_by_name "dotprod" in
  let compile_with_fresh_session () =
    let session = Longnail.Flow.create_session ~disk:(Cache.Disk.open_store root) () in
    let request = Longnail.Flow.Request.make ~session () in
    let o = Longnail.Flow.compile_outputs request Scaiev.Datasheet.vexriscv tu in
    (o, Cache.Disk.stats (Option.get (Longnail.Flow.session_disk session)))
  in
  let cold, cold_st = compile_with_fresh_session () in
  let warm, warm_st = compile_with_fresh_session () in
  check_int "cold stores" 1 cold_st.Cache.Disk.stores;
  check_int "warm disk hit" 1 warm_st.Cache.Disk.hits;
  check_int "warm misses" 0 warm_st.Cache.Disk.misses;
  check_bool "same yaml bytes" true (cold.Longnail.Flow.o_yaml = warm.Longnail.Flow.o_yaml);
  check_bool "same sv bytes" true
    (List.for_all2
       (fun (a : Longnail.Flow.output_func) (b : Longnail.Flow.output_func) ->
         a.of_name = b.of_name && a.of_sv = b.of_sv && a.of_mode = b.of_mode
         && a.of_max_stage = b.of_max_stage)
       cold.Longnail.Flow.o_funcs warm.Longnail.Flow.o_funcs)

(* switching the emission backend against the same disk store must miss
   (distinct keys), not replay the other backend's bytes *)
let test_disk_backend_keyed () =
  let root = tmpdir () in
  let tu = Isax.Registry.compile_by_name "dotprod" in
  let run knobs =
    let session = Longnail.Flow.create_session ~disk:(Cache.Disk.open_store root) () in
    let request = Longnail.Flow.Request.make ~knobs ~session () in
    let o = Longnail.Flow.compile_outputs request Scaiev.Datasheet.vexriscv tu in
    (o, Cache.Disk.stats (Option.get (Longnail.Flow.session_disk session)))
  in
  let _, sv_st = run (Longnail.Flow.knobs ()) in
  check_int "cold stores" 1 sv_st.Cache.Disk.stores;
  let _, v_st = run (Longnail.Flow.knobs ~backend:Rtl.Backend.V2001 ()) in
  check_int "backend switch misses" 1 v_st.Cache.Disk.misses;
  check_int "backend switch never hits stale sv" 0 v_st.Cache.Disk.hits;
  (* same knobs again: now it replays from disk *)
  let _, again_st = run (Longnail.Flow.knobs ~backend:Rtl.Backend.V2001 ()) in
  check_int "same backend replays" 1 again_st.Cache.Disk.hits

let () =
  Alcotest.run "cache"
    [
      ( "store",
        [
          Alcotest.test_case "hit/miss" `Quick test_store_hit_miss;
          Alcotest.test_case "raise not stored" `Quick test_store_raise_not_stored;
          Alcotest.test_case "lru eviction" `Quick test_store_lru_eviction;
          Alcotest.test_case "disabled" `Quick test_store_disabled;
          Alcotest.test_case "obs counters" `Quick test_store_obs_counters;
        ] );
      ( "fingerprints",
        [
          Alcotest.test_case "tunit deterministic" `Quick test_tunit_fp_deterministic;
          Alcotest.test_case "locations excluded" `Quick test_tunit_fp_ignores_locations;
          Alcotest.test_case "source sensitivity" `Quick test_tunit_fp_source_sensitivity;
          Alcotest.test_case "golden digests" `Quick test_tunit_fp_golden;
          Alcotest.test_case "graph alpha-invariance" `Quick test_graph_fp_alpha_invariant;
          Alcotest.test_case "datasheets distinct" `Quick test_datasheet_fp_distinct;
          Alcotest.test_case "paper-core artifacts golden" `Slow
            test_paper_core_artifacts_golden;
        ] );
      ( "disk",
        [
          Alcotest.test_case "roundtrip across processes" `Quick
            test_disk_roundtrip_across_processes;
          Alcotest.test_case "eviction respects budget" `Quick
            test_disk_eviction_respects_budget;
          Alcotest.test_case "atomic publish, no partials" `Quick test_disk_no_partial_files;
          Alcotest.test_case "version mismatch invalidates" `Quick
            test_disk_version_mismatch_invalidates;
          Alcotest.test_case "corrupt payload evicted" `Quick test_disk_corrupt_payload_evicted;
          Alcotest.test_case "concurrent domain writers" `Quick test_disk_concurrent_writers;
          Alcotest.test_case "disk-backed session outputs" `Quick
            test_disk_backed_session_outputs;
          Alcotest.test_case "backend keyed on disk" `Quick test_disk_backend_keyed;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "recompile from cache" `Quick test_session_recompile_from_cache;
          Alcotest.test_case "content addressed" `Quick test_session_content_addressed;
          Alcotest.test_case "cached = uncached (all targets)" `Slow
            test_cached_equals_uncached_everywhere;
          Alcotest.test_case "hazard ablation shares funcs" `Quick
            test_session_hazard_shares_funcs;
          Alcotest.test_case "knob isolation" `Quick test_session_knob_isolation;
          Alcotest.test_case "engine/backend knob isolation" `Quick
            test_session_engine_backend_isolation;
          Alcotest.test_case "compile_many shares" `Quick test_compile_many_shares;
          Alcotest.test_case "frontend memo" `Quick test_frontend_memo;
        ] );
    ]
