(* Tests for the CoreDSL front-end: lexer, parser, elaboration, type
   checking, and the reference interpreter, exercised both on small
   fragments and on the full benchmark ISAXes of Table 3. *)

open Coredsl

let u w = Bitvec.unsigned_ty w
let bv w v = Bitvec.of_int (u w) v
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ---- lexer ---- *)

let test_lexer_tokens () =
  let toks = Lexer.tokenize "X[rs1] += 7'd13; // comment\n0xcafe" in
  check_int "token count" 9 (List.length toks) (* incl. EOF *)

let test_lexer_sized_literals () =
  match Lexer.tokenize "7'd13 3'b101 16'hcafe" with
  | [ { tok = INT a; _ }; { tok = INT b; _ }; { tok = INT c; _ }; { tok = EOF; _ } ] ->
      let w = function Some t -> t.Bitvec.width | None -> -1 in
      check_int "7'd13 width" 7 (w a.forced);
      check_int "3'b101 width" 3 (w b.forced);
      check_int "16'hcafe width" 16 (w c.forced);
      check_int "values" 13 (Bitvec.Bn.to_int_exn a.value);
      check_int "3'b101 value" 5 (Bitvec.Bn.to_int_exn b.value);
      check_int "hcafe value" 0xcafe (Bitvec.Bn.to_int_exn c.value)
  | _ -> Alcotest.fail "unexpected token stream"

let test_lexer_comments_and_errors () =
  check_int "block comment" 2 (List.length (Lexer.tokenize "/* x */ foo"));
  Alcotest.check_raises "unterminated comment"
    (Ast.Syntax_error ({ file = "<input>"; line = 1; col = 8 }, "unterminated comment"))
    (fun () -> ignore (Lexer.tokenize "/* oops"))

(* ---- parser ---- *)

let test_parse_figure1 () =
  let d = Parser.parse Isax.Sources.dotprod in
  check_int "imports" 1 (List.length d.imports);
  check_int "sets" 1 (List.length d.sets);
  let s = List.hd d.sets in
  check_str "name" "X_DOTP" s.set_name;
  check_str "extends" "RV32I" (Option.get s.extends);
  check_int "instructions" 1 (List.length s.set_isa.instructions)

let test_parse_encoding_elements () =
  let d = Parser.parse Isax.Sources.dotprod in
  let i = List.hd (List.hd d.sets).set_isa.instructions in
  check_int "encoding elements" 6 (List.length i.encoding);
  match i.encoding with
  | Ast.Enc_lit l :: Ast.Enc_field { field = "rs2"; hi = 4; lo = 0 } :: _ ->
      check_int "funct7 width" 7 (Bitvec.width l)
  | _ -> Alcotest.fail "unexpected encoding structure"

let test_parse_always_and_state () =
  let d = Parser.parse Isax.Sources.zol in
  let s = List.hd d.sets in
  check_int "always blocks" 1 (List.length s.set_isa.always);
  check_int "state decls" 3 (List.length s.set_isa.state);
  check_str "always name" "zol" (List.hd s.set_isa.always).aname

let test_parse_precedence () =
  (* a + b * c parses as a + (b*c); concat looser than shift *)
  let e = Parser.parse_expr_string "a + b * c" in
  (match e.e with
  | Ast.Binop (Ast.Add, _, { e = Ast.Binop (Ast.Mul, _, _); _ }) -> ()
  | _ -> Alcotest.fail "precedence broken for + *");
  let e2 = Parser.parse_expr_string "a << 2 :: b" in
  match e2.e with
  | Ast.Concat ({ e = Ast.Binop (Ast.Shl, _, _); _ }, _) -> ()
  | _ -> Alcotest.fail "precedence broken for :: <<"

let test_parse_ternary_cast () =
  let e = Parser.parse_expr_string "(unsigned<5>)(a ? b : c)" in
  match e.e with
  | Ast.Cast ({ cast_signed = false; cast_width = Some _ }, { e = Ast.Ternary _; _ }) -> ()
  | _ -> Alcotest.fail "cast/ternary parse"

let test_parse_error_location () =
  try
    ignore (Parser.parse "InstructionSet Foo { instructions { Bad { encoding: 1; } } }");
    Alcotest.fail "expected syntax error"
  with Ast.Syntax_error (_, msg) ->
    check_bool "mentions sized" true
      (String.length msg > 0)

(* ---- elaboration ---- *)

let test_elaborate_rv32i () =
  let tu = compile_rv32i () in
  let elab = tu.Tast.elab in
  check_int "params" 1 (List.length elab.params);
  check_str "XLEN" "32" (Bitvec.to_string (List.assoc "XLEN" elab.params));
  let x = Option.get (Elaborate.find_reg elab "X") in
  check_int "X elems" 32 x.elems;
  check_int "X width" 32 x.rty.Bitvec.width;
  let pc = Option.get (Elaborate.pc_reg elab) in
  check_str "pc name" "PC" pc.rname;
  let mem = Option.get (Elaborate.main_mem elab) in
  check_str "mem name" "MEM" mem.sname;
  check_int "mem elem width" 8 mem.elem_ty.Bitvec.width

let test_elaborate_inheritance () =
  (* zol extends RV32I: flattened unit contains both X and COUNT *)
  let tu = Isax.Registry.compile_by_name "zol" in
  let elab = tu.Tast.elab in
  check_bool "X present" true (Elaborate.find_reg elab "X" <> None);
  check_bool "COUNT present" true (Elaborate.find_reg elab "COUNT" <> None);
  check_bool "base ADDI present" true (Tast.find_tinstr tu "ADDI" <> None);
  check_bool "setup_zol present" true (Tast.find_tinstr tu "setup_zol" <> None)

let test_elaborate_core_combination () =
  let tu = Isax.Registry.compile_by_name "autoinc+zol" in
  let elab = tu.Tast.elab in
  check_bool "ADDR present" true (Elaborate.find_reg elab "ADDR" <> None);
  check_bool "COUNT present" true (Elaborate.find_reg elab "COUNT" <> None);
  (* RV32I included exactly once via two paths *)
  check_int "one X register" 1
    (List.length (List.filter (fun (r : Elaborate.reg) -> r.rname = "X") elab.regs));
  check_int "44 instructions" 44 (List.length tu.Tast.tinstrs)

let test_elaborate_missing_import () =
  try
    ignore (compile ~target:"T" "import \"nope.core_desc\"\nInstructionSet T {}");
    Alcotest.fail "expected error"
  with Error m -> check_bool "mentions import" true (String.length m > 0)

let test_elaborate_rom () =
  let tu = Isax.Registry.compile_by_name "sbox" in
  let rom = Option.get (Elaborate.find_reg tu.Tast.elab "SBOX") in
  check_bool "const" true rom.rconst;
  check_int "elems" 256 rom.elems;
  let init = Option.get rom.rinit in
  check_int "SBOX[0]" 0x63 (Bitvec.to_int init.(0));
  check_int "SBOX[255]" 0x16 (Bitvec.to_int init.(255))

(* ---- type checking ---- *)

let compile_behavior body =
  let src =
    Printf.sprintf
      {|
import "RV32I.core_desc"
InstructionSet T extends RV32I {
  instructions {
    TEST {
      encoding: 12'd0 :: rs1[4:0] :: 3'b111 :: rd[4:0] :: 7'b1111011;
      behavior: { %s }
    }
  }
}
|}
      body
  in
  compile ~target:"T" src

let expect_type_error body =
  try
    ignore (compile_behavior body);
    Alcotest.failf "expected type error for: %s" body
  with Error m -> check_bool "is type error" true (String.length m > 0)

let test_no_implicit_narrowing () =
  (* the paper's canonical examples: u4 = u5 and u4 = s4 are forbidden *)
  expect_type_error "unsigned<5> u5 = 0; unsigned<4> u4 = u5;";
  expect_type_error "signed<4> s4 = 0; unsigned<4> u4 = s4;";
  (* and the fix with an explicit cast works *)
  ignore (compile_behavior "unsigned<5> u5 = 0; unsigned<4> u4 = (unsigned<4>)u5;");
  ignore (compile_behavior "signed<4> s4 = 0; unsigned<4> u4 = (unsigned<4>)s4;")

let test_widening_ok () =
  ignore (compile_behavior "unsigned<4> u4 = 0; unsigned<5> u5 = u4; signed<5> s5 = u4;");
  expect_type_error "unsigned<4> u4 = 0; signed<4> s4 = u4;"

let test_operator_result_types () =
  (* u5 + s4 : signed<7> — assigning to signed<7> is exact *)
  ignore (compile_behavior "unsigned<5> u5 = 0; signed<4> s4 = 0; signed<7> r = u5 + s4;");
  expect_type_error "unsigned<5> u5 = 0; signed<4> s4 = 0; signed<6> r = u5 + s4;"

let test_spawn_restrictions () =
  (* spawn inside always is rejected *)
  let src =
    {|
import "RV32I.core_desc"
InstructionSet T extends RV32I {
  always { blk { spawn { PC = PC; } } }
}
|}
  in
  (try
     ignore (compile ~target:"T" src);
     Alcotest.fail "expected error"
   with Error m -> check_bool "spawn in always rejected" true (String.length m > 0));
  ignore (compile_behavior "spawn { X[rd] = (unsigned<32>)1; }")

let test_encoding_fields () =
  let tu = compile_rv32i () in
  let jal = Option.get (Tast.find_tinstr tu "JAL") in
  let imm = Option.get (Tast.find_field jal "imm") in
  check_int "JAL imm width" 21 imm.fld_width;
  check_int "JAL imm segments" 4 (List.length imm.segments);
  let beq = Option.get (Tast.find_tinstr tu "BEQ") in
  let imm = Option.get (Tast.find_field beq "imm") in
  check_int "BEQ imm width" 13 imm.fld_width

let test_unknown_ident () = expect_type_error "X[rd] = NOT_A_THING;"

let test_errors_accumulate_across_instructions () =
  (* three independently broken instructions: one run of the front end
     reports all three, each with a stable code and a span into its own
     behavior block, instead of stopping at the first *)
  let src =
    {|import "RV32I.core_desc"
InstructionSet T extends RV32I {
  instructions {
    E1 { encoding: 12'd0 :: rs1[4:0] :: 3'b001 :: rd[4:0] :: 7'b1111011;
         behavior: { X[rd] = NOT_A_THING; } }
    E2 { encoding: 12'd0 :: rs1[4:0] :: 3'b010 :: rd[4:0] :: 7'b1111011;
         behavior: { unsigned<5> u5 = 0; unsigned<4> u4 = u5; } }
    E3 { encoding: 12'd0 :: rs1[4:0] :: 3'b011 :: rd[4:0] :: 7'b1111011;
         behavior: { signed<4> s4 = 0; unsigned<4> u4 = s4; } }
  }
}
|}
  in
  match compile_result ~file:"accumulate.core_desc" ~target:"T" src with
  | Ok _ -> Alcotest.fail "expected three type errors"
  | Stdlib.Error ds ->
      check_int "all three reported in one run" 3 (List.length ds);
      List.iter
        (fun (d : Diag.t) ->
          check_bool (d.Diag.code ^ " registered") true (Diag.is_registered d.Diag.code);
          match d.Diag.span with
          | Some sp -> check_bool "valid span" true (Diag.span_is_valid sp)
          | None -> Alcotest.fail "accumulated diagnostic without span")
        ds;
      (* diagnostics come out in declaration order of the instructions *)
      let lines = List.map (fun (d : Diag.t) -> (Option.get d.Diag.span).Diag.sp_line) ds in
      check_bool "source order" true (List.sort compare lines = lines)

let test_rom_write_rejected () =
  let src =
    {|
import "RV32I.core_desc"
InstructionSet T extends RV32I {
  architectural_state { const unsigned<8> R[2] = {1, 2}; }
  instructions {
    W { encoding: 12'd0 :: rs1[4:0] :: 3'b111 :: rd[4:0] :: 7'b1111011;
        behavior: { R[0] = (unsigned<8>)1; } }
  }
}
|}
  in
  try
    ignore (compile ~target:"T" src);
    Alcotest.fail "expected error"
  with Error m -> check_bool "rom write rejected" true (String.length m > 0)

(* ---- interpreter: base ISA ---- *)

let exec_fields st tu name fields =
  let ti = Option.get (Tast.find_tinstr tu name) in
  let w = Interp.encode ti (List.map (fun (n, v) -> (n, bv 32 v)) fields) in
  Interp.exec_instr st ti ~instr_word:w

let test_interp_addi_add () =
  let tu = compile_rv32i () in
  let st = Interp.create tu in
  exec_fields st tu "ADDI" [ ("imm", 42); ("rs1", 0); ("rd", 1) ];
  exec_fields st tu "ADDI" [ ("imm", 0xFFF); ("rs1", 1); ("rd", 2) ];
  (* imm = -1 sign-extended *)
  check_int "x1" 42 (Bitvec.to_int (Interp.read_regfile st "X" 1));
  check_int "x2" 41 (Bitvec.to_int (Interp.read_regfile st "X" 2));
  exec_fields st tu "ADD" [ ("rs1", 1); ("rs2", 2); ("rd", 3) ];
  check_int "x3" 83 (Bitvec.to_int (Interp.read_regfile st "X" 3));
  (* x0 is hardwired zero via the rd != 0 guard *)
  exec_fields st tu "ADDI" [ ("imm", 7); ("rs1", 0); ("rd", 0) ];
  check_int "x0" 0 (Bitvec.to_int (Interp.read_regfile st "X" 0))

let test_interp_load_store () =
  let tu = compile_rv32i () in
  let st = Interp.create tu in
  exec_fields st tu "ADDI" [ ("imm", 0x100); ("rs1", 0); ("rd", 1) ];
  exec_fields st tu "ADDI" [ ("imm", 0x7BC); ("rs1", 0); ("rd", 2) ];
  exec_fields st tu "SW" [ ("imm", 4); ("rs1", 1); ("rs2", 2) ];
  exec_fields st tu "LW" [ ("imm", 4); ("rs1", 1); ("rd", 3) ];
  check_int "load back" 0x7BC (Bitvec.to_int (Interp.read_regfile st "X" 3));
  (* byte access: little endian *)
  exec_fields st tu "LBU" [ ("imm", 4); ("rs1", 1); ("rd", 4) ];
  check_int "low byte" 0xBC (Bitvec.to_int (Interp.read_regfile st "X" 4));
  exec_fields st tu "LB" [ ("imm", 4); ("rs1", 1); ("rd", 5) ];
  (* 0xBC sign-extends to 0xFFFFFFBC *)
  check_bool "lb sign extends" true
    (Bitvec.equal_value (Interp.read_regfile st "X" 5) (bv 32 0xFFFFFFBC))

let test_interp_branch () =
  let tu = compile_rv32i () in
  let st = Interp.create tu in
  Interp.write_reg st "PC" (bv 32 0x1000);
  exec_fields st tu "ADDI" [ ("imm", 5); ("rs1", 0); ("rd", 1) ];
  exec_fields st tu "ADDI" [ ("imm", 5); ("rs1", 0); ("rd", 2) ];
  st.Interp.trace <- [];
  exec_fields st tu "BEQ" [ ("imm", 16); ("rs1", 1); ("rs2", 2) ];
  check_bool "branch taken" true (Bitvec.equal_value (Interp.read_reg st "PC") (bv 32 0x1010));
  exec_fields st tu "BNE" [ ("imm", 16); ("rs1", 1); ("rs2", 2) ];
  check_bool "bne not taken" true (Bitvec.equal_value (Interp.read_reg st "PC") (bv 32 0x1010))

let test_interp_slt_shift () =
  let tu = compile_rv32i () in
  let st = Interp.create tu in
  exec_fields st tu "ADDI" [ ("imm", 0xFFF); ("rs1", 0); ("rd", 1) ] (* x1 = -1 *);
  exec_fields st tu "ADDI" [ ("imm", 1); ("rs1", 0); ("rd", 2) ];
  exec_fields st tu "SLT" [ ("rs1", 1); ("rs2", 2); ("rd", 3) ];
  check_int "-1 < 1 signed" 1 (Bitvec.to_int (Interp.read_regfile st "X" 3));
  exec_fields st tu "SLTU" [ ("rs1", 1); ("rs2", 2); ("rd", 4) ];
  check_int "0xffffffff < 1 unsigned" 0 (Bitvec.to_int (Interp.read_regfile st "X" 4));
  exec_fields st tu "SRAI" [ ("shamt", 4); ("rs1", 1); ("rd", 5) ];
  check_bool "sra keeps sign" true (Bitvec.equal_value (Interp.read_regfile st "X" 5) (bv 32 0xFFFFFFFF));
  exec_fields st tu "SRLI" [ ("shamt", 4); ("rs1", 1); ("rd", 6) ];
  check_bool "srl shifts in zeros" true
    (Bitvec.equal_value (Interp.read_regfile st "X" 6) (bv 32 0x0FFFFFFF))

let test_interp_lui_jal () =
  let tu = compile_rv32i () in
  let st = Interp.create tu in
  let lui = Option.get (Tast.find_tinstr tu "LUI") in
  let w = Interp.encode lui [ ("imm", bv 32 0xDEAD5000); ("rd", bv 32 1) ] in
  Interp.exec_instr st lui ~instr_word:w;
  check_bool "lui" true (Bitvec.equal_value (Interp.read_regfile st "X" 1) (bv 32 0xDEAD5000));
  Interp.write_reg st "PC" (bv 32 0x2000);
  let jal = Option.get (Tast.find_tinstr tu "JAL") in
  let w = Interp.encode jal [ ("imm", bv 32 0x100); ("rd", bv 32 5) ] in
  Interp.exec_instr st jal ~instr_word:w;
  check_bool "ra" true (Bitvec.equal_value (Interp.read_regfile st "X" 5) (bv 32 0x2004));
  check_bool "target" true (Bitvec.equal_value (Interp.read_reg st "PC") (bv 32 0x2100))

(* ---- interpreter: benchmark ISAXes ---- *)

let test_interp_dotprod () =
  let tu = Isax.Registry.compile_by_name "dotprod" in
  let st = Interp.create tu in
  (* x1 = bytes [1, 2, 3, 4] (LSB first), x2 = bytes [10, 20, 30, 40] *)
  Interp.write_regfile st "X" 1 (bv 32 0x04030201);
  Interp.write_regfile st "X" 2 (bv 32 0x281E140A);
  exec_fields st tu "DOTP" [ ("rs1", 1); ("rs2", 2); ("rd", 3) ];
  (* 1*10 + 2*20 + 3*30 + 4*40 = 10+40+90+160 = 300 *)
  check_int "dot product" 300 (Bitvec.to_int (Interp.read_regfile st "X" 3));
  (* signed bytes: x1 = [-1, 0, 0, 0] -> -1 * 10 = -10 (mod 2^32) *)
  Interp.write_regfile st "X" 1 (bv 32 0x000000FF);
  exec_fields st tu "DOTP" [ ("rs1", 1); ("rs2", 2); ("rd", 4) ];
  check_bool "signed dot" true
    (Bitvec.equal_value (Interp.read_regfile st "X" 4) (bv 32 0xFFFFFFF6))

let test_interp_sbox () =
  let tu = Isax.Registry.compile_by_name "sbox" in
  let st = Interp.create tu in
  Interp.write_regfile st "X" 1 (bv 32 0x00010253);
  exec_fields st tu "SUBBYTES" [ ("rs1", 1); ("rd", 2) ];
  (* sbox(0)=0x63 sbox(1)=0x7c sbox(2)=0x77 sbox(0x53)=0xed *)
  check_bool "subbytes" true (Bitvec.equal_value (Interp.read_regfile st "X" 2) (bv 32 0x637C77ED))

let test_interp_autoinc () =
  let tu = Isax.Registry.compile_by_name "autoinc" in
  let st = Interp.create tu in
  Interp.write_regfile st "X" 1 (bv 32 0x200);
  Interp.write_regfile st "X" 2 (bv 32 111);
  Interp.write_regfile st "X" 3 (bv 32 222);
  exec_fields st tu "AI_SETUP" [ ("imm", 0); ("rs1", 1) ];
  exec_fields st tu "AI_SW" [ ("rs2", 2) ];
  exec_fields st tu "AI_SW" [ ("rs2", 3) ];
  check_int "ADDR advanced" 0x208 (Bitvec.to_int (Interp.read_reg st "ADDR"));
  exec_fields st tu "AI_SETUP" [ ("imm", 0); ("rs1", 1) ];
  exec_fields st tu "AI_LW" [ ("rd", 4) ];
  exec_fields st tu "AI_LW" [ ("rd", 5) ];
  check_int "first" 111 (Bitvec.to_int (Interp.read_regfile st "X" 4));
  check_int "second" 222 (Bitvec.to_int (Interp.read_regfile st "X" 5))

let test_interp_ijmp () =
  let tu = Isax.Registry.compile_by_name "ijmp" in
  let st = Interp.create tu in
  (* store jump table entry 0xCAFE0000 at 0x300 *)
  Interp.write_regfile st "X" 1 (bv 32 0x300);
  Interp.write_mem st "MEM" 0x300 4 (bv 32 0xCAFE0000);
  exec_fields st tu "IJMP" [ ("imm", 0); ("rs1", 1) ];
  check_bool "pc from mem" true (Bitvec.equal_value (Interp.read_reg st "PC") (bv 32 0xCAFE0000))

let test_interp_sqrt () =
  List.iter
    (fun (isax, iname) ->
      let tu = Isax.Registry.compile_by_name isax in
      let st = Interp.create tu in
      List.iter
        (fun x ->
          Interp.write_regfile st "X" 1 (bv 32 x);
          exec_fields st tu iname [ ("rs1", 1); ("rd", 2) ];
          let got = Bitvec.to_int (Interp.read_regfile st "X" 2) in
          let expect = int_of_float (sqrt (float_of_int x *. 4294967296.0)) in
          check_bool
            (Printf.sprintf "%s sqrt(%d): %d ~ %d" isax x got expect)
            true
            (abs (got - expect) <= 1))
        [ 0; 1; 2; 4; 100; 65536; 12345; 0x7FFFFFFF ])
    [ ("sqrt_tightly", "SQRT"); ("sqrt_decoupled", "SQRT_D") ]

let test_interp_sparkle () =
  let tu = Isax.Registry.compile_by_name "sparkle" in
  let st = Interp.create tu in
  (* reference Alzette implementation in OCaml *)
  let mask = 0xFFFFFFFF in
  let ror x n = ((x lsr n) lor (x lsl (32 - n))) land mask in
  let alzette x y c =
    let x = (x + ror y 31) land mask in
    let y = y lxor ror x 24 in
    let x = x lxor c in
    let x = (x + ror y 17) land mask in
    let y = y lxor ror x 17 in
    let x = x lxor c in
    let x = (x + y) land mask in
    let y = y lxor ror x 31 in
    let x = x lxor c in
    let x = (x + ror y 24) land mask in
    let y = y lxor ror x 16 in
    let x = x lxor c in
    (x, y)
  in
  let c = 0xb7e15162 in
  List.iter
    (fun (x0, y0) ->
      let ex, ey = alzette x0 y0 c in
      Interp.write_regfile st "X" 1 (bv 32 x0);
      Interp.write_regfile st "X" 2 (bv 32 y0);
      exec_fields st tu "ALZ_X" [ ("rs1", 1); ("rs2", 2); ("rd", 3) ];
      exec_fields st tu "ALZ_Y" [ ("rs1", 1); ("rs2", 2); ("rd", 4) ];
      check_bool "alzette x" true (Bitvec.equal_value (Interp.read_regfile st "X" 3) (bv 32 ex));
      check_bool "alzette y" true (Bitvec.equal_value (Interp.read_regfile st "X" 4) (bv 32 ey)))
    [ (0, 0); (1, 2); (0xDEADBEEF, 0x12345678); (mask, mask) ]

let test_interp_zol () =
  let tu = Isax.Registry.compile_by_name "zol" in
  let st = Interp.create tu in
  Interp.write_reg st "PC" (bv 32 0x100);
  (* setup: loop body starts at 0x104, ends at PC + (5 << 1) = 0x10A, 3 iters *)
  exec_fields st tu "setup_zol" [ ("uimmL", 3); ("uimmS", 5) ];
  check_int "START_PC" 0x104 (Bitvec.to_int (Interp.read_reg st "START_PC"));
  check_int "END_PC" 0x10A (Bitvec.to_int (Interp.read_reg st "END_PC"));
  check_int "COUNT" 3 (Bitvec.to_int (Interp.read_reg st "COUNT"));
  let zol = List.hd tu.Tast.talways in
  (* tick at non-end PC: nothing happens *)
  Interp.write_reg st "PC" (bv 32 0x104);
  Interp.exec_always st zol;
  check_int "count unchanged" 3 (Bitvec.to_int (Interp.read_reg st "COUNT"));
  (* tick at end PC: jump back, decrement *)
  Interp.write_reg st "PC" (bv 32 0x10A);
  Interp.exec_always st zol;
  check_int "pc reset" 0x104 (Bitvec.to_int (Interp.read_reg st "PC"));
  check_int "count decremented" 2 (Bitvec.to_int (Interp.read_reg st "COUNT"));
  (* exhaust the counter *)
  Interp.write_reg st "PC" (bv 32 0x10A);
  Interp.exec_always st zol;
  Interp.write_reg st "PC" (bv 32 0x10A);
  Interp.exec_always st zol;
  check_int "count zero" 0 (Bitvec.to_int (Interp.read_reg st "COUNT"));
  Interp.write_reg st "PC" (bv 32 0x10A);
  Interp.exec_always st zol;
  check_int "no jump when exhausted" 0x10A (Bitvec.to_int (Interp.read_reg st "PC"))

let test_spawn_detection () =
  let tu = Isax.Registry.compile_by_name "sqrt_decoupled" in
  let sq = Option.get (Tast.find_tinstr tu "SQRT_D") in
  check_bool "decoupled has spawn" true (Tast.contains_spawn sq.ti_behavior);
  let tu2 = Isax.Registry.compile_by_name "sqrt_tightly" in
  let sq2 = Option.get (Tast.find_tinstr tu2 "SQRT") in
  check_bool "tightly has no spawn" false (Tast.contains_spawn sq2.ti_behavior)

(* ---- edge cases ---- *)

let test_parameter_override_in_core () =
  (* a Core re-assigns an inherited parameter; state sizes follow *)
  let src =
    {|
InstructionSet BASE {
  architectural_state {
    unsigned int W = 8;
    register unsigned<W> R;
  }
}
Core WIDE provides BASE {
  architectural_state {
    unsigned int W = 16;
  }
}
|}
  in
  let tu = compile ~target:"WIDE" src in
  let r = Option.get (Elaborate.find_reg tu.Tast.elab "R") in
  check_int "overridden width" 16 r.rty.Bitvec.width

let test_parse_error_messages () =
  let expect_syntax src =
    try
      ignore (compile ~target:"T" src);
      Alcotest.fail "expected syntax error"
    with Error m -> check_bool "has location" true (String.contains m ':')
  in
  expect_syntax "InstructionSet T { architectural_state { register unsigned<8 R; } }";
  expect_syntax "InstructionSet T { instructions { A { encoding: 32'd0 behavior: {} } } }";
  expect_syntax "InstructionSet T { bogus_section { } }"

let test_huge_width_values () =
  (* the front-end handles very wide registers *)
  let tu =
    compile_behavior
      "unsigned<256> wide = 0; wide = (unsigned<256>)(wide + X[rs1]); \
       if (rd != 0) X[rd] = (unsigned<32>)wide[31:0];"
  in
  let st = Interp.create tu in
  Interp.write_regfile st "X" 1 (bv 32 0xABCD);
  exec_fields st tu "TEST" [ ("rs1", 1); ("rd", 2) ];
  check_int "wide roundtrip" 0xABCD (Bitvec.to_int (Interp.read_regfile st "X" 2))

let test_instruction_override () =
  (* a later definition of the same instruction replaces the earlier one *)
  let src =
    {|
import "RV32I.core_desc"
InstructionSet T extends RV32I {
  instructions {
    ADDI {
      encoding: imm[11:0] :: rs1[4:0] :: 3'b000 :: rd[4:0] :: 7'b0010011;
      behavior: { if (rd != 0) X[rd] = (unsigned<32>)(X[rs1] + (signed<12>)imm + 1); }
    }
  }
}
|}
  in
  let tu = compile ~target:"T" src in
  check_int "still 40 instructions" 40 (List.length tu.Tast.tinstrs);
  let st = Interp.create tu in
  exec_fields st tu "ADDI" [ ("imm", 41); ("rs1", 0); ("rd", 1) ];
  check_int "overridden semantics" 42 (Bitvec.to_int (Interp.read_regfile st "X" 1))

(* ---- extended control flow: while / do-while / switch ---- *)

let test_while_loop () =
  (* popcount via a while loop with a compile-time-known trip count *)
  let tu =
    compile_behavior
      "unsigned<32> v = X[rs1]; unsigned<6> n = 0; int i = 0;\n\
       while (i < 32) { n = (unsigned<6>)(n + v[0]); v = (unsigned<32>)(v >> 1); i += 1; }\n\
       if (rd != 0) X[rd] = (unsigned<32>)n;"
  in
  let st = Interp.create tu in
  Interp.write_regfile st "X" 1 (bv 32 0xF00F0001);
  exec_fields st tu "TEST" [ ("rs1", 1); ("rd", 2) ];
  check_int "popcount" 9 (Bitvec.to_int (Interp.read_regfile st "X" 2))

let test_do_while () =
  let tu =
    compile_behavior
      "unsigned<32> acc = 1; int i = 0;\n\
       do { acc = (unsigned<32>)(acc + acc); i += 1; } while (i < 5);\n\
       if (rd != 0) X[rd] = acc;"
  in
  let st = Interp.create tu in
  exec_fields st tu "TEST" [ ("rs1", 0); ("rd", 2) ];
  check_int "2^5" 32 (Bitvec.to_int (Interp.read_regfile st "X" 2))

let test_switch () =
  let tu =
    compile_behavior
      "unsigned<32> r = 0;\n\
       switch (X[rs1][1:0]) {\n\
         case 0: r = 100; break;\n\
         case 1: r = 200; break;\n\
         case 2: r = 300; break;\n\
         default: r = 999;\n\
       }\n\
       if (rd != 0) X[rd] = r;"
  in
  let st = Interp.create tu in
  List.iter
    (fun (input, expect) ->
      Interp.write_regfile st "X" 1 (bv 32 input);
      exec_fields st tu "TEST" [ ("rs1", 1); ("rd", 2) ];
      check_int (Printf.sprintf "case %d" input) expect
        (Bitvec.to_int (Interp.read_regfile st "X" 2)))
    [ (0, 100); (1, 200); (2, 300); (3, 999) ]

let test_switch_requires_single_default () =
  expect_type_error
    "switch (X[rs1]) { default: X[rd] = (unsigned<32>)1; default: X[rd] = (unsigned<32>)2; }"

let test_while_through_hls () =
  (* the while-based popcount survives the whole flow and matches in RTL *)
  let tu =
    compile_behavior
      "unsigned<32> v = X[rs1]; unsigned<6> n = 0; int i = 0;\n\
       while (i < 32) { n = (unsigned<6>)(n + v[0]); v = (unsigned<32>)(v >> 1); i += 1; }\n\
       if (rd != 0) X[rd] = (unsigned<32>)n;"
  in
  let core = Scaiev.Datasheet.vexriscv in
  let ti = Option.get (Tast.find_tinstr tu "TEST") in
  let f = Longnail.Flow.compile_functionality core tu (`Instr ti) in
  let word = Interp.encode ti [ ("rs1", bv 32 1); ("rd", bv 32 2) ] in
  let input = bv 32 0xDEADBEEF in
  let st = Interp.create tu in
  Interp.write_regfile st "X" 1 input;
  Interp.exec_instr st ti ~instr_word:word;
  let resp =
    Longnail.Cosim.run f
      { Longnail.Cosim.default_stimulus with instr_word = Some word; rs1 = Some input }
  in
  match resp.rd_write with
  | Some (data, true) ->
      check_bool "popcount in RTL" true
        (Bitvec.equal_value data (Interp.read_regfile st "X" 2))
  | _ -> Alcotest.fail "no rd write"

(* ---- encode/decode properties ---- *)

let prop_encode_decode_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip on RV32I" ~count:200
    (QCheck.triple (QCheck.int_range 0 39) (QCheck.int_range 0 31) (QCheck.int_range 0 4095))
    (fun (inum, r, imm) ->
      let tu = compile_rv32i () in
      let ti = List.nth tu.Tast.tinstrs inum in
      let fields =
        List.map
          (fun (f : Tast.field_info) ->
            let v = match f.fld_name with "imm" -> imm | "shamt" -> r land 31 | _ -> r in
            (f.fld_name, bv 32 v))
          ti.fields
      in
      let w = Interp.encode ti fields in
      match Interp.decode (Interp.create tu) w with
      | Some ti' -> ti'.Tast.ti_name = ti.Tast.ti_name
      | None -> false)

let prop_decode_unique =
  QCheck.Test.make ~name:"at most one instruction matches a word" ~count:300 QCheck.int
    (fun seed ->
      let tu = compile_rv32i () in
      let w = bv 32 (abs seed land 0xFFFFFFFF) in
      let matches = List.filter (fun ti -> Interp.matches ti w) tu.Tast.tinstrs in
      List.length matches <= 1)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_encode_decode_roundtrip; prop_decode_unique ]

let () =
  Alcotest.run "coredsl"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "sized literals" `Quick test_lexer_sized_literals;
          Alcotest.test_case "comments and errors" `Quick test_lexer_comments_and_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "figure 1 dotprod" `Quick test_parse_figure1;
          Alcotest.test_case "encoding elements" `Quick test_parse_encoding_elements;
          Alcotest.test_case "always and state" `Quick test_parse_always_and_state;
          Alcotest.test_case "operator precedence" `Quick test_parse_precedence;
          Alcotest.test_case "ternary and cast" `Quick test_parse_ternary_cast;
          Alcotest.test_case "error reporting" `Quick test_parse_error_location;
        ] );
      ( "elaborate",
        [
          Alcotest.test_case "rv32i state" `Quick test_elaborate_rv32i;
          Alcotest.test_case "inheritance" `Quick test_elaborate_inheritance;
          Alcotest.test_case "core combination" `Quick test_elaborate_core_combination;
          Alcotest.test_case "missing import" `Quick test_elaborate_missing_import;
          Alcotest.test_case "const ROM" `Quick test_elaborate_rom;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "no implicit narrowing" `Quick test_no_implicit_narrowing;
          Alcotest.test_case "widening ok" `Quick test_widening_ok;
          Alcotest.test_case "operator result types" `Quick test_operator_result_types;
          Alcotest.test_case "spawn restrictions" `Quick test_spawn_restrictions;
          Alcotest.test_case "encoding fields" `Quick test_encoding_fields;
          Alcotest.test_case "unknown identifier" `Quick test_unknown_ident;
          Alcotest.test_case "errors accumulate" `Quick test_errors_accumulate_across_instructions;
          Alcotest.test_case "rom write rejected" `Quick test_rom_write_rejected;
        ] );
      ( "interp-base",
        [
          Alcotest.test_case "addi/add" `Quick test_interp_addi_add;
          Alcotest.test_case "load/store" `Quick test_interp_load_store;
          Alcotest.test_case "branches" `Quick test_interp_branch;
          Alcotest.test_case "slt/shifts" `Quick test_interp_slt_shift;
          Alcotest.test_case "lui/jal" `Quick test_interp_lui_jal;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "parameter override" `Quick test_parameter_override_in_core;
          Alcotest.test_case "syntax error messages" `Quick test_parse_error_messages;
          Alcotest.test_case "256-bit locals" `Quick test_huge_width_values;
          Alcotest.test_case "instruction override" `Quick test_instruction_override;
        ] );
      ( "control-flow",
        [
          Alcotest.test_case "while loop" `Quick test_while_loop;
          Alcotest.test_case "do-while" `Quick test_do_while;
          Alcotest.test_case "switch" `Quick test_switch;
          Alcotest.test_case "single default" `Quick test_switch_requires_single_default;
          Alcotest.test_case "while through HLS" `Quick test_while_through_hls;
        ] );
      ( "interp-isax",
        [
          Alcotest.test_case "dotprod (fig 1)" `Quick test_interp_dotprod;
          Alcotest.test_case "sbox" `Quick test_interp_sbox;
          Alcotest.test_case "autoinc" `Quick test_interp_autoinc;
          Alcotest.test_case "ijmp" `Quick test_interp_ijmp;
          Alcotest.test_case "sqrt both variants" `Quick test_interp_sqrt;
          Alcotest.test_case "sparkle alzette" `Quick test_interp_sparkle;
          Alcotest.test_case "zol (fig 3)" `Quick test_interp_zol;
          Alcotest.test_case "spawn detection" `Quick test_spawn_detection;
        ] );
      ("properties", qcheck_cases);
    ]
