(* Whole-flow fuzzing: generate random CoreDSL instruction behaviors,
   compile them through the complete Longnail flow for a random host core,
   and check that the generated RTL computes exactly what the CoreDSL
   reference interpreter says (the paper's Section 5.3 methodology, at
   property-test scale). *)

let u32 = Bitvec.unsigned_ty 32
let bv = Bitvec.of_int u32

(* ---- random expression generator ----

   Expressions are built over the operand registers (as local snapshots),
   random literals and earlier locals, with explicit-width casts keeping
   everything type-correct by construction: every generated expression is
   wrapped in a cast to a concrete type, so assignments always succeed. *)

type rctx = { rng : Random.State.t; mutable locals : (string * int) list (* name, width *) }

let rnd ctx n = Random.State.int ctx.rng n

let pick ctx xs = List.nth xs (rnd ctx (List.length xs))

(* an expression of exactly [w] unsigned bits *)
let rec gen_expr ctx ~depth ~w : string =
  let cast e = Printf.sprintf "(unsigned<%d>)(%s)" w e in
  if depth = 0 then gen_leaf ctx ~w
  else
    match rnd ctx 8 with
    | 0 -> gen_leaf ctx ~w
    | 1 ->
        let wa = 1 + rnd ctx 32 and wb = 1 + rnd ctx 32 in
        cast
          (Printf.sprintf "%s + %s" (gen_expr ctx ~depth:(depth - 1) ~w:wa)
             (gen_expr ctx ~depth:(depth - 1) ~w:wb))
    | 2 ->
        let wa = 1 + rnd ctx 32 and wb = 1 + rnd ctx 32 in
        cast
          (Printf.sprintf "%s - %s" (gen_expr ctx ~depth:(depth - 1) ~w:wa)
             (gen_expr ctx ~depth:(depth - 1) ~w:wb))
    | 3 ->
        let wa = 1 + rnd ctx 16 and wb = 1 + rnd ctx 16 in
        cast
          (Printf.sprintf "%s * %s" (gen_expr ctx ~depth:(depth - 1) ~w:wa)
             (gen_expr ctx ~depth:(depth - 1) ~w:wb))
    | 4 ->
        let op = pick ctx [ "&"; "|"; "^" ] in
        cast
          (Printf.sprintf "%s %s %s"
             (gen_expr ctx ~depth:(depth - 1) ~w)
             op
             (gen_expr ctx ~depth:(depth - 1) ~w))
    | 5 ->
        (* concatenation *)
        let wa = max 1 (w / 2) in
        let wb = max 1 (w - wa) in
        cast
          (Printf.sprintf "%s :: %s"
             (gen_expr ctx ~depth:(depth - 1) ~w:wa)
             (gen_expr ctx ~depth:(depth - 1) ~w:wb))
    | 6 ->
        (* static slice of a wider value *)
        let wide = w + rnd ctx 8 in
        let lo = rnd ctx (wide - w + 1) in
        cast
          (Printf.sprintf "(%s)[%d:%d]" (gen_expr ctx ~depth:(depth - 1) ~w:wide) (lo + w - 1) lo)
    | 7 ->
        (* comparison-driven ternary *)
        let wa = 1 + rnd ctx 32 in
        cast
          (Printf.sprintf "(%s < %s) ? %s : %s"
             (gen_expr ctx ~depth:(depth - 1) ~w:wa)
             (gen_expr ctx ~depth:(depth - 1) ~w:wa)
             (gen_expr ctx ~depth:(depth - 1) ~w)
             (gen_expr ctx ~depth:(depth - 1) ~w))
    | _ -> assert false

and gen_leaf ctx ~w =
  let cast e = Printf.sprintf "(unsigned<%d>)(%s)" w e in
  match rnd ctx 4 with
  | 0 -> cast "a"
  | 1 -> cast "b"
  | 2 when ctx.locals <> [] ->
      let n, _ = pick ctx ctx.locals in
      cast n
  | _ -> cast (string_of_int (rnd ctx 0xFFFF))

(* a random behavior: local declarations, optional if, result write *)
let gen_behavior seed =
  let ctx = { rng = Random.State.make [| seed |]; locals = [] } in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "unsigned<32> a = X[rs1]; unsigned<32> b = X[rs2];\n";
  let n_locals = 1 + rnd ctx 4 in
  for i = 0 to n_locals - 1 do
    let w = 1 + rnd ctx 40 in
    let name = Printf.sprintf "v%d" i in
    Buffer.add_string buf
      (Printf.sprintf "        unsigned<%d> %s = %s;\n" w name (gen_expr ctx ~depth:2 ~w));
    ctx.locals <- (name, w) :: ctx.locals
  done;
  (* sometimes mix in custom-register traffic *)
  let uses_cr = rnd ctx 2 = 0 in
  if uses_cr then begin
    Buffer.add_string buf "        unsigned<32> crv = CR;\n";
    ctx.locals <- ("crv", 32) :: ctx.locals
  end;
  (match rnd ctx 3 with
  | 0 -> ()
  | _ ->
      (* a conditional update of one local *)
      let name, w = pick ctx ctx.locals in
      Buffer.add_string buf
        (Printf.sprintf "        if (%s > %s) { %s = %s; }\n" (gen_expr ctx ~depth:1 ~w:16)
           (gen_expr ctx ~depth:1 ~w:16) name (gen_expr ctx ~depth:2 ~w)));
  if uses_cr then
    Buffer.add_string buf
      (Printf.sprintf "        CR = %s;\n" (gen_expr ctx ~depth:2 ~w:32));
  Buffer.add_string buf
    (Printf.sprintf "        if (rd != 0) X[rd] = %s;\n" (gen_expr ctx ~depth:2 ~w:32));
  Buffer.contents buf

let fuzz_source seed =
  Printf.sprintf
      {|
import "RV32I.core_desc"
InstructionSet FUZZ extends RV32I {
  architectural_state {
    register unsigned<32> CR;
  }
  instructions {
    FZ {
      encoding: 7'd9 :: rs2[4:0] :: rs1[4:0] :: 3'b111 :: rd[4:0] :: 7'b1111011;
      behavior: {
%s      }
    }
  }
}
|}
    (gen_behavior seed)

let compile_fuzz seed = Coredsl.compile ~target:"FUZZ" (fuzz_source seed)

let cores = Scaiev.Core_registry.datasheets ()

let prop_flow_matches_interp =
  QCheck.Test.make ~name:"random behaviors: RTL == interpreter" ~count:60
    (QCheck.triple QCheck.small_nat (QCheck.int_bound 0x3FFFFFFF) (QCheck.int_bound 0x3FFFFFFF))
    (fun (seed, va, vb) ->
      let tu = compile_fuzz seed in
      let core = List.nth cores (seed mod List.length cores) in
      let c = Longnail.Flow.compile core tu in
      let f = Option.get (Longnail.Flow.find_func c "FZ") in
      let ti = Option.get (Coredsl.Tast.find_tinstr tu "FZ") in
      let word = Coredsl.Interp.encode ti [ ("rs1", bv 1); ("rs2", bv 2); ("rd", bv 3) ] in
      (* golden *)
      let cr0 = bv ((va lxor vb) land 0x3FFFFFFF) in
      let st = Coredsl.Interp.create tu in
      Coredsl.Interp.write_regfile st "X" 1 (bv va);
      Coredsl.Interp.write_regfile st "X" 2 (bv vb);
      Coredsl.Interp.write_reg st "CR" cr0;
      Coredsl.Interp.exec_instr st ti ~instr_word:word;
      let expect = Coredsl.Interp.read_regfile st "X" 3 in
      let expect_cr = Coredsl.Interp.read_reg st "CR" in
      (* hardware *)
      let resp =
        Longnail.Cosim.run f
          {
            Longnail.Cosim.default_stimulus with
            instr_word = Some word;
            rs1 = Some (bv va);
            rs2 = Some (bv vb);
            custreg = (fun _ _ -> cr0);
          }
      in
      let rd_ok =
        match resp.rd_write with
        | Some (data, true) -> Bitvec.equal_value data expect
        | _ -> false
      in
      let cr_ok =
        match resp.custreg_writes with
        | [] -> Bitvec.equal_value expect_cr cr0
        | [ w ] -> w.cw_valid && Bitvec.equal_value w.cw_data expect_cr
        | _ -> false
      in
      rd_ok && cr_ok)

(* the generated sources also exercise the SystemVerilog emitter: emitted
   text must at least be non-empty and free of internal op names. Compiled
   with --verify-each, so the dialect-aware verifier also vets the IR
   after every optimization pass on every random behavior. *)
let prop_sv_clean =
  QCheck.Test.make ~name:"random behaviors emit clean SV" ~count:30 QCheck.small_nat (fun seed ->
      let tu = compile_fuzz seed in
      let request = Longnail.Flow.Request.make ~verify_each:true () in
      let c = Longnail.Flow.compile_request request Scaiev.Datasheet.vexriscv tu in
      let f = Option.get (Longnail.Flow.find_func c "FZ") in
      let sv = f.cf_sv in
      let contains needle =
        let nl = String.length needle and hl = String.length sv in
        let rec go i = i + nl <= hl && (String.sub sv i nl = needle || go (i + 1)) in
        go 0
      in
      String.length sv > 0 && contains "module FZ(" && (not (contains "lil.")) && contains "endmodule")

(* ---- mutated sources must fail with structured diagnostics ----

   Corrupt a known-good source in a targeted way (typos, deleted
   punctuation, bogus identifiers, truncation) and require that any
   resulting compile failure is a diagnostic — registered code, valid
   span where one is attached — rather than a bare exception escaping
   the front end or the flow. *)

let replace_first ~sub ~by s =
  let nl = String.length sub in
  let rec go i =
    if i + nl > String.length s then s
    else if String.sub s i nl = sub then
      String.sub s 0 i ^ by ^ String.sub s (i + nl) (String.length s - i - nl)
    else go (i + 1)
  in
  go 0

let mutate rng src =
  let nth_char c n =
    (* index of the [n]-th occurrence of [c], if any *)
    let occ = ref [] in
    String.iteri (fun i ch -> if ch = c then occ := i :: !occ) src;
    match List.rev !occ with [] -> None | os -> Some (List.nth os (n mod List.length os))
  in
  let drop_char_at i = String.sub src 0 i ^ String.sub src (i + 1) (String.length src - i - 1) in
  match Random.State.int rng 8 with
  | 0 -> replace_first ~sub:"X[rd]" ~by:"X[zz]" src
  | 1 -> replace_first ~sub:"behavior" ~by:"behaviour" src
  | 2 -> (
      match nth_char '}' (Random.State.int rng 16) with
      | Some i -> drop_char_at i
      | None -> src)
  | 3 -> (
      match nth_char ';' (Random.State.int rng 16) with
      | Some i -> drop_char_at i
      | None -> src)
  | 4 -> replace_first ~sub:"unsigned<32> a" ~by:"unsigned<4> a" src
  | 5 ->
      let i = 1 + Random.State.int rng (String.length src - 1) in
      String.sub src 0 i ^ "$$" ^ String.sub src i (String.length src - i)
  | 6 -> replace_first ~sub:"X[rs1]" ~by:"X[undefined_reg]" src
  | _ ->
      (* truncate somewhere in the second half *)
      let half = String.length src / 2 in
      String.sub src 0 (half + Random.State.int rng half)

let structured (ds : Diag.t list) =
  ds <> []
  && List.for_all
       (fun (d : Diag.t) ->
         Diag.is_registered d.Diag.code
         && match d.Diag.span with Some sp -> Diag.span_is_valid sp | None -> true)
       ds

let prop_mutations_yield_diagnostics =
  QCheck.Test.make ~name:"mutated sources fail with structured diagnostics" ~count:80
    (QCheck.pair QCheck.small_nat QCheck.small_nat)
    (fun (seed, mseed) ->
      let rng = Random.State.make [| seed; mseed |] in
      let src = mutate rng (fuzz_source seed) in
      match Coredsl.compile_result ~file:"mutant.core_desc" ~target:"FUZZ" src with
      | Error ds -> structured ds
      | Ok tu -> (
          (* the mutation survived the front end: the back end must still
             either succeed or fail with a structured diagnostic — any
             bare Failure/Invalid_argument fails the property. Compiled
             with --verify-each so malformed IR out of any pass surfaces
             as E0512 rather than a downstream crash. *)
          try
            let request = Longnail.Flow.Request.make ~verify_each:true () in
            ignore (Longnail.Flow.compile_request request Scaiev.Datasheet.vexriscv tu);
            true
          with Diag.Fatal ds -> structured ds))

let () =
  Alcotest.run "fuzz-flow"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_flow_matches_interp; prop_sv_clean; prop_mutations_yield_diagnostics ] );
    ]
