(* Tests for the observability substrate: span nesting and timing,
   counters, metric overwrite semantics, JSON rendering (including string
   escaping and non-finite protection), schema extraction, and validation
   — the contract the CI gate and the bench baseline writer rely on. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let check_strs = Alcotest.(check (list string))

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_span_nesting () =
  let s = Obs.create ~name:"top" () in
  Obs.span s "a" (fun sa ->
      Obs.span sa "a1" (fun _ -> ());
      Obs.span sa "a2" (fun _ -> ()));
  Obs.span s "b" (fun _ -> ());
  Obs.finish s;
  let r = Obs.root s in
  check_str "root name" "top" r.Obs.sp_name;
  check_strs "children in order" [ "a"; "b" ]
    (List.map (fun c -> c.Obs.sp_name) (Obs.children r));
  let a = Option.get (Obs.find_span r "a") in
  check_strs "grandchildren in order" [ "a1"; "a2" ]
    (List.map (fun c -> c.Obs.sp_name) (Obs.children a));
  check_int "pre-order count" 5 (List.length (Obs.all_spans r))

let test_span_timing () =
  let s = Obs.create () in
  Obs.span s "work" (fun _ ->
      (* a measurable amount of work *)
      let acc = ref 0 in
      for i = 1 to 1_000_000 do
        acc := !acc + i
      done;
      ignore !acc);
  Obs.finish s;
  let r = Obs.root s in
  let w = Option.get (Obs.find_span r "work") in
  check_bool "child elapsed positive" true (w.Obs.sp_elapsed_ns > 0.0);
  check_bool "root covers child" true (r.Obs.sp_elapsed_ns >= w.Obs.sp_elapsed_ns)

let test_span_recorded_on_raise () =
  let s = Obs.create () in
  (try Obs.span s "boom" (fun sb -> Obs.metric_int sb "partial" 1; failwith "x")
   with Failure _ -> ());
  let b = Option.get (Obs.find_span (Obs.root s) "boom") in
  check_int "metric survives the raise" 1 (Option.get (Obs.get_int b "partial"));
  check_bool "elapsed was still closed" true (b.Obs.sp_elapsed_ns >= 0.0)

let test_counters_and_overwrite () =
  let s = Obs.create () in
  Obs.incr s "n" ();
  Obs.incr s "n" ~by:4 ();
  Obs.metric_int s "x" 1;
  Obs.metric_int s "x" 2;
  Obs.metric_str s "mode" "ilp";
  let r = Obs.root s in
  check_int "counter accumulates" 5 (Option.get (Obs.get_int r "n"));
  check_int "set overwrites" 2 (Option.get (Obs.get_int r "x"));
  check_str "string metric" "ilp" (Option.get (Obs.get_str r "mode"));
  check_int "no duplicate keys" 3 (List.length (Obs.metrics r))

let test_metric_insertion_order () =
  let s = Obs.create () in
  Obs.metric_int s "b" 1;
  Obs.metric_int s "a" 2;
  Obs.metric_int s "b" 3;
  (* overwrite moves the key to the end: last write wins in both value
     and position, so JSON output order is deterministic *)
  check_strs "order" [ "a"; "b" ] (List.map fst (Obs.metrics (Obs.root s)))

let test_json_rendering () =
  let s = Obs.create ~name:"root" () in
  Obs.span s "stage" (fun st ->
      Obs.metric_int st "ops" 42;
      Obs.metric_float st "ratio" 0.5;
      Obs.metric_str st "note" "a \"quoted\"\nline");
  Obs.finish s;
  let j = Obs.to_json (Obs.root s) in
  let contains needle = contains j needle in
  check_bool "root name" true (contains "\"name\":\"root\"");
  check_bool "child span" true (contains "\"name\":\"stage\"");
  check_bool "int metric" true (contains "\"ops\":42");
  check_bool "float metric" true (contains "\"ratio\":0.5");
  check_bool "escaped quote" true (contains "\\\"quoted\\\"");
  check_bool "escaped newline" true (contains "\\n");
  check_bool "elapsed field" true (contains "\"elapsed_ms\":");
  (* structural sanity: braces and brackets balance *)
  let bal =
    String.fold_left
      (fun (d, ok) c ->
        let d = match c with '{' | '[' -> d + 1 | '}' | ']' -> d - 1 | _ -> d in
        (d, ok && d >= 0))
      (0, true) j
  in
  check_bool "balanced" true (fst bal = 0 && snd bal)

let test_json_no_nonfinite () =
  (* the JSON renderer never emits nan/inf tokens: non-finite floats
     become the sentinel 0 (and [validate] rejects them upstream) *)
  let s = Obs.create () in
  Obs.metric_float s "bad" Float.nan;
  Obs.metric_float s "pos" Float.infinity;
  let j = Obs.to_json (Obs.root s) in
  check_bool "no nan token" true (not (contains (String.lowercase_ascii j) "nan"));
  check_bool "no inf token" true (not (contains (String.lowercase_ascii j) "inf"));
  check_bool "nan rendered as 0" true (contains j "\"bad\":0")

let test_validate () =
  let s = Obs.create () in
  Obs.metric_int s "fine" 1;
  Obs.validate (Obs.root s);
  let s2 = Obs.create () in
  Obs.metric_float s2 "bad" Float.nan;
  check_bool "nan rejected" true
    (try
       Obs.validate (Obs.root s2);
       false
     with Obs.Invalid_metrics _ -> true);
  let s3 = Obs.create () in
  Obs.metric_int s3 "" 1;
  check_bool "empty key rejected" true
    (try
       Obs.validate (Obs.root s3);
       false
     with Obs.Invalid_metrics _ -> true)

let test_schema () =
  let s = Obs.create ~name:"compile" () in
  Obs.span s "func:DOTP" (fun sf ->
      Obs.metric_int sf "ops" 1;
      Obs.span sf "hlir" (fun sh -> Obs.metric_int sh "ops" 2));
  Obs.span s "func:SQRT" (fun sf -> Obs.metric_int sf "ops" 3);
  let sch = Obs.schema (Obs.root s) in
  (* instance-specific names collapse to func:*, entries sorted + distinct *)
  check_strs "schema content"
    (List.sort compare
       [ "span compile"; "span func:*"; "span hlir"; "metric func:*.ops"; "metric hlir.ops" ])
    sch

let test_generic_name () =
  check_str "collapse" "func:*" (Obs.generic_name "func:DOTP");
  check_str "collapse pass" "pass:*" (Obs.generic_name "pass:cse");
  check_str "plain stays" "hlir" (Obs.generic_name "hlir")

let test_pretty () =
  let s = Obs.create ~name:"compile" () in
  Obs.span s "stage" (fun st -> Obs.metric_int st "ops" 7);
  Obs.finish s;
  let p = Obs.to_pretty (Obs.root s) in
  check_bool "mentions span" true (contains p "stage");
  check_bool "mentions metric" true (contains p "ops=7")

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting and order" `Quick test_span_nesting;
          Alcotest.test_case "timing" `Quick test_span_timing;
          Alcotest.test_case "recorded on raise" `Quick test_span_recorded_on_raise;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and overwrite" `Quick test_counters_and_overwrite;
          Alcotest.test_case "insertion order" `Quick test_metric_insertion_order;
        ] );
      ( "render",
        [
          Alcotest.test_case "json" `Quick test_json_rendering;
          Alcotest.test_case "json non-finite" `Quick test_json_no_nonfinite;
          Alcotest.test_case "pretty" `Quick test_pretty;
        ] );
      ( "contract",
        [
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "schema" `Quick test_schema;
          Alcotest.test_case "generic names" `Quick test_generic_name;
        ] );
    ]
