(* Tests for the SCAIE-V layer: sub-interface registry (Table 1), virtual
   datasheets, configuration format (Figures 8/9), and the interface
   generator's validation + integration-plan synthesis. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ---- Table 1 ---- *)

let test_table1_complete () =
  check_int "16 sub-interfaces" 16 (List.length Scaiev.Iface.table1);
  List.iter
    (fun name -> check_bool name true (List.mem_assoc name Scaiev.Iface.table1))
    [ "RdInstr"; "RdRS1"; "RdRS2"; "RdCustReg"; "RdPC"; "RdMem"; "WrRD"; "WrCustReg.addr";
      "WrCustReg.data"; "WrPC"; "WrMem"; "RdIValid_s"; "RdStall_s"; "RdFlush_s"; "WrStall_s";
      "WrFlush_s" ]

let test_relaxable () =
  check_bool "WrRD" true (List.mem "WrRD" Scaiev.Iface.relaxable);
  check_bool "RdMem" true (List.mem "RdMem" Scaiev.Iface.relaxable);
  check_bool "WrMem" true (List.mem "WrMem" Scaiev.Iface.relaxable);
  check_bool "RdRS1 not relaxable" false (List.mem "RdRS1" Scaiev.Iface.relaxable)

let test_lil_mapping () =
  check_str "read_rs1" "RdRS1" (Option.get (Scaiev.Iface.of_lil_op "lil.read_rs1"));
  check_str "write_pc" "WrPC" (Option.get (Scaiev.Iface.of_lil_op "lil.write_pc"));
  check_bool "comb not an interface" true (Scaiev.Iface.of_lil_op "comb.add" = None)

(* ---- datasheets ---- *)

let test_datasheets () =
  check_int "four paper cores" 4 (List.length (Scaiev.Core_registry.paper_datasheets ()));
  let vex = Scaiev.Datasheet.vexriscv in
  check_int "vex stages" 5 vex.pipeline_stages;
  check_bool "pico is fsm" true Scaiev.Datasheet.picorv32.is_fsm;
  check_bool "orca forwards from wb" true Scaiev.Datasheet.orca.forwarding_from_writeback;
  (* Figure 9's datasheet: instr word stages 1..4, register file 2..4 *)
  let w = Option.get (Scaiev.Datasheet.find vex "RdInstr") in
  check_int "RdInstr earliest" 1 w.earliest;
  check_int "RdInstr latest" 4 (Option.get w.native_latest);
  let w = Option.get (Scaiev.Datasheet.find vex "RdRS1") in
  check_int "RdRS1 earliest" 2 w.earliest;
  (* Table 4 baselines *)
  Alcotest.(check (float 0.1)) "orca fmax" 996.0 Scaiev.Datasheet.orca.base_freq_mhz;
  Alcotest.(check (float 0.1)) "piccolo area" 26098.0 Scaiev.Datasheet.piccolo.base_area_um2

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_datasheet_yaml () =
  let y = Scaiev.Datasheet.to_yaml Scaiev.Datasheet.vexriscv in
  check_bool "mentions core" true (contains y "core: VexRiscv");
  check_bool "has RdMem" true (contains y "RdMem");
  check_bool "has latency field" true (contains y "latency: 1")

(* ---- the core registry ---- *)

let slugs_of l = List.map (fun (d : Scaiev.Core_registry.t) -> d.slug) l

let test_registry_enumeration () =
  Alcotest.(check (list string))
    "paper cores in Table-4 order"
    [ "orca"; "piccolo"; "picorv32"; "vexriscv" ]
    (slugs_of (Scaiev.Core_registry.paper_cores ()));
  Alcotest.(check (list string))
    "all = paper + ported"
    [ "orca"; "piccolo"; "picorv32"; "vexriscv"; "mriscv" ]
    (slugs_of (Scaiev.Core_registry.all ()));
  Alcotest.(check (list string))
    "outlook folds in behind the flag"
    [ "orca"; "piccolo"; "picorv32"; "vexriscv"; "mriscv"; "cva5"; "cva6" ]
    (slugs_of (Scaiev.Core_registry.all ~include_outlook:true ()));
  (* the registry's paper datasheets are the very same values the
     static Datasheet bindings expose (goldens stay byte-identical) *)
  check_bool "paper datasheets are the static ones" true
    (List.for_all2
       (fun a b -> a == b)
       (Scaiev.Core_registry.paper_datasheets ())
       [ Scaiev.Datasheet.orca; Scaiev.Datasheet.piccolo; Scaiev.Datasheet.picorv32;
         Scaiev.Datasheet.vexriscv ])

let test_registry_lookup () =
  let find = Scaiev.Core_registry.find in
  check_bool "case-insensitive slug" true
    ((Option.get (find "VexRiscv")).Scaiev.Core_registry.slug = "vexriscv");
  check_bool "fifth core registered" true
    ((Option.get (find "MRISCV")).Scaiev.Core_registry.kind = Scaiev.Core_registry.Ported);
  check_bool "outlook cores resolvable" true (find "cva6" <> None);
  check_bool "unknown -> None" true (find "rocket" = None);
  (* datasheet -> descriptor bridge *)
  let d = Option.get (Scaiev.Core_registry.of_datasheet Scaiev.Datasheet.piccolo) in
  check_str "of_datasheet" "piccolo" d.Scaiev.Core_registry.slug;
  check_bool "find_datasheet" true
    (Scaiev.Core_registry.find_datasheet "mriscv" = Some Scaiev.Core_registry.mriscv)

let test_registry_suggest_resolve () =
  check_bool "typo suggests vexriscv" true
    (List.mem "vexriscv" (Scaiev.Core_registry.suggest "vexrisc"));
  check_bool "typo suggests mriscv" true
    (List.mem "mriscv" (Scaiev.Core_registry.suggest "mricsv"));
  check_bool "prefix suggests picorv32" true
    (List.mem "picorv32" (Scaiev.Core_registry.suggest "pico"));
  (match Scaiev.Core_registry.resolve "piccolo" with
  | Ok d -> check_str "resolve ok" "piccolo" d.Scaiev.Core_registry.slug
  | Error _ -> Alcotest.fail "resolve of a registered core failed");
  match Scaiev.Core_registry.resolve "vexrsicv" with
  | Ok _ -> Alcotest.fail "resolve of an unknown core succeeded"
  | Error msg ->
      check_bool "message lists every slug" true
        (List.for_all (fun s -> contains msg s)
           (Scaiev.Core_registry.slugs ~include_outlook:true ()));
      check_bool "message suggests" true (contains msg "did you mean")

(* Satellite: the registry-wide well-formedness validator. Every
   registered core must be clean, and each invariant must actually
   fire on a deliberately mistyped datasheet. *)
let test_registry_validator () =
  Alcotest.(check (list (pair string (list string))))
    "every registered core is well-formed" []
    (Scaiev.Core_registry.validate_all ());
  List.iter
    (fun (d : Scaiev.Core_registry.t) ->
      Alcotest.(check (list string))
        (d.slug ^ " validates") [] (Scaiev.Core_registry.validate d))
    (Scaiev.Core_registry.all ~include_outlook:true ());
  (* corrupt one invariant at a time; each must be caught *)
  let base = Scaiev.Core_registry.find_exn "vexriscv" in
  let with_ds ds = { base with Scaiev.Core_registry.datasheet = ds } in
  let violations d = Scaiev.Core_registry.validate d <> [] in
  let ds = base.Scaiev.Core_registry.datasheet in
  check_bool "window past pipeline depth" true
    (violations
       (with_ds { ds with ifaces = [ ("RdRS1", Scaiev.Datasheet.window 2 ~native_latest:9) ] }));
  check_bool "earliest > native_latest" true
    (violations
       (with_ds { ds with ifaces = [ ("WrRD", Scaiev.Datasheet.window 4 ~native_latest:2) ] }));
  check_bool "operand stage at writeback" true
    (violations (with_ds { ds with operand_stage = ds.writeback_stage }));
  check_bool "FSM flag with pipeline stages" true
    (violations (with_ds { ds with is_fsm = true }));
  check_bool "pipelined core without native latest" true
    (violations (with_ds { ds with ifaces = [ ("RdRS1", Scaiev.Datasheet.window 2) ] }));
  check_bool "non-positive area" true (violations (with_ds { ds with base_area_um2 = 0.0 }));
  check_bool "non-positive frequency" true
    (violations (with_ds { ds with base_freq_mhz = -1.0 }));
  check_bool "negative timing" true
    (violations
       { base with
         Scaiev.Core_registry.timing =
           { base.Scaiev.Core_registry.timing with Scaiev.Core_registry.mem_wait = -1 } })

let test_registry_registration_errors () =
  let raises f =
    match f () with
    | () -> false
    | exception Scaiev.Core_registry.Registration_error _ -> true
  in
  let vex = Scaiev.Core_registry.find_exn "vexriscv" in
  check_bool "duplicate slug rejected" true
    (raises (fun () -> Scaiev.Core_registry.register vex));
  check_bool "mistyped datasheet rejected at registration" true
    (raises (fun () ->
         Scaiev.Core_registry.register
           { vex with
             Scaiev.Core_registry.name = "BadCore";
             slug = "badcore";
             datasheet = { vex.Scaiev.Core_registry.datasheet with core_name = "BadCore"; base_area_um2 = -1.0 };
           }));
  check_bool "nothing was registered by the failures" true
    (Scaiev.Core_registry.find "badcore" = None)

(* ---- config format ---- *)

let sample_config =
  {
    Scaiev.Config.regs = [ { cr_name = "COUNT"; cr_width = 32; cr_elems = 1 } ];
    funcs =
      [
        {
          fn_name = "setup_zol";
          fn_kind = `Instruction;
          fn_mask = "-----------------101000000001011";
          fn_entries =
            [
              { se_iface = "RdPC"; se_stage = 1; se_has_valid = false; se_mode = Scaiev.Config.In_pipeline };
              { se_iface = "WrCOUNT.addr"; se_stage = 1; se_has_valid = false; se_mode = Scaiev.Config.In_pipeline };
              { se_iface = "WrCOUNT.data"; se_stage = 1; se_has_valid = true; se_mode = Scaiev.Config.In_pipeline };
            ];
        };
        {
          fn_name = "zol";
          fn_kind = `Always;
          fn_mask = "";
          fn_entries =
            [
              { se_iface = "RdPC"; se_stage = 0; se_has_valid = false; se_mode = Scaiev.Config.Always_mode };
              { se_iface = "WrPC"; se_stage = 0; se_has_valid = true; se_mode = Scaiev.Config.Always_mode };
              { se_iface = "RdCOUNT"; se_stage = 0; se_has_valid = false; se_mode = Scaiev.Config.Always_mode };
              { se_iface = "WrCOUNT.addr"; se_stage = 0; se_has_valid = false; se_mode = Scaiev.Config.Always_mode };
              { se_iface = "WrCOUNT.data"; se_stage = 0; se_has_valid = true; se_mode = Scaiev.Config.Always_mode };
            ];
        };
      ];
  }

let test_config_yaml_figure8 () =
  (* the emitted YAML contains the Figure 8 elements *)
  let y = Scaiev.Config.to_yaml sample_config in
  let contains needle =
    let nl = String.length needle and hl = String.length y in
    let rec go i = i + nl <= hl && (String.sub y i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "register request" true (contains "{register: COUNT, width: 32, elements: 1}");
  check_bool "instruction" true (contains "instruction: setup_zol");
  check_bool "mask" true (contains "-----------------101000000001011");
  check_bool "always" true (contains "always: zol");
  check_bool "has valid" true (contains "has valid: 1")

let test_config_roundtrip () =
  let y = Scaiev.Config.to_yaml sample_config in
  let c = Scaiev.Config.of_yaml y in
  check_int "regs" 1 (List.length c.regs);
  check_int "funcs" 2 (List.length c.funcs);
  let zol = List.find (fun f -> f.Scaiev.Config.fn_name = "zol" ) c.funcs in
  check_bool "always kind" true (zol.fn_kind = `Always);
  check_int "zol entries" 5 (List.length zol.fn_entries);
  let setup = List.find (fun f -> f.Scaiev.Config.fn_name = "setup_zol") c.funcs in
  check_str "mask preserved" "-----------------101000000001011" setup.fn_mask;
  let wrdata = List.find (fun e -> e.Scaiev.Config.se_iface = "WrCOUNT.data") setup.fn_entries in
  check_bool "valid preserved" true wrdata.se_has_valid

let test_mask_string () =
  let tu = Isax.Registry.compile_by_name "zol" in
  let ti = Option.get (Coredsl.Tast.find_tinstr tu "setup_zol") in
  let m =
    Scaiev.Config.mask_string ~width:ti.enc_width ~mask:ti.mask ~match_bits:ti.match_bits
  in
  (* Figure 8: uimmL and uimmS are don't-care, funct3=110 (our encoding),
     rd=00000, opcode=0101011 *)
  check_int "width 32" 32 (String.length m);
  check_str "fixed tail" "110000000101011" (String.sub m 17 15);
  check_str "wildcards" "-----------------" (String.sub m 0 17)

(* ---- generator ---- *)

let test_generator_zol () =
  let tu = Isax.Registry.compile_by_name "zol" in
  let c = Longnail.Flow.compile Scaiev.Datasheet.vexriscv tu in
  let a = c.Longnail.Flow.adapter in
  check_bool "has always" true a.Scaiev.Generator.has_always_block;
  check_bool "pc write" true a.Scaiev.Generator.uses_pc_write;
  (* START_PC, END_PC, COUNT = 96 bits of custom registers *)
  check_int "custom reg bits" 96 a.Scaiev.Generator.custom_reg_bits;
  check_bool "no scoreboard" true (a.Scaiev.Generator.scoreboard_bits = 0)

let test_generator_decoupled_scoreboard () =
  let tu = Isax.Registry.compile_by_name "sqrt_decoupled" in
  let c = Longnail.Flow.compile Scaiev.Datasheet.vexriscv tu in
  check_bool "scoreboard present" true (c.Longnail.Flow.adapter.Scaiev.Generator.scoreboard_bits > 0);
  let c2 =
    Longnail.Flow.compile
      ~request:(Longnail.Flow.Request.make ~hazard_handling:false ())
      Scaiev.Datasheet.vexriscv tu
  in
  check_int "no scoreboard without hazard handling" 0
    c2.Longnail.Flow.adapter.Scaiev.Generator.scoreboard_bits

let test_generator_arbitration () =
  (* autoinc has three instructions writing ADDR: arbitration needed *)
  let tu = Isax.Registry.compile_by_name "autoinc" in
  let c = Longnail.Flow.compile Scaiev.Datasheet.vexriscv tu in
  check_bool "arbitration bits" true
    (c.Longnail.Flow.adapter.Scaiev.Generator.arbitration_mux_bits > 0)

let test_generator_rejects_bad_configs () =
  let core = Scaiev.Datasheet.vexriscv in
  (* always entry in stage 1 *)
  let bad =
    {
      Scaiev.Config.regs = [];
      funcs =
        [
          {
            fn_name = "a";
            fn_kind = `Always;
            fn_mask = "";
            fn_entries =
              [ { se_iface = "RdPC"; se_stage = 1; se_has_valid = false; se_mode = Scaiev.Config.Always_mode } ];
          };
        ];
    }
  in
  (try
     ignore (Scaiev.Generator.generate core bad);
     Alcotest.fail "expected error"
   with Scaiev.Generator.Generate_error _ -> ());
  (* duplicate sub-interface use *)
  let bad2 =
    {
      Scaiev.Config.regs = [];
      funcs =
        [
          {
            fn_name = "i";
            fn_kind = `Instruction;
            fn_mask = String.make 32 '-';
            fn_entries =
              [
                { se_iface = "RdRS1"; se_stage = 2; se_has_valid = false; se_mode = Scaiev.Config.In_pipeline };
                { se_iface = "RdRS1"; se_stage = 3; se_has_valid = false; se_mode = Scaiev.Config.In_pipeline };
              ];
          };
        ];
    }
  in
  (try
     ignore (Scaiev.Generator.generate core bad2);
     Alcotest.fail "expected error"
   with Scaiev.Generator.Generate_error _ -> ());
  (* tightly-coupled on a non-relaxable interface *)
  let bad3 =
    {
      Scaiev.Config.regs = [];
      funcs =
        [
          {
            fn_name = "i";
            fn_kind = `Instruction;
            fn_mask = String.make 32 '-';
            fn_entries =
              [ { se_iface = "RdRS1"; se_stage = 6; se_has_valid = false; se_mode = Scaiev.Config.Tightly_coupled } ];
          };
        ];
    }
  in
  try
    ignore (Scaiev.Generator.generate core bad3);
    Alcotest.fail "expected error"
  with Scaiev.Generator.Generate_error _ -> ()

let () =
  Alcotest.run "scaiev"
    [
      ( "iface",
        [
          Alcotest.test_case "table 1 complete" `Quick test_table1_complete;
          Alcotest.test_case "relaxable interfaces" `Quick test_relaxable;
          Alcotest.test_case "lil mapping" `Quick test_lil_mapping;
        ] );
      ( "datasheet",
        [
          Alcotest.test_case "four paper cores" `Quick test_datasheets;
          Alcotest.test_case "yaml rendering" `Quick test_datasheet_yaml;
        ] );
      ( "registry",
        [
          Alcotest.test_case "enumeration classes" `Quick test_registry_enumeration;
          Alcotest.test_case "lookup" `Quick test_registry_lookup;
          Alcotest.test_case "suggest + resolve" `Quick test_registry_suggest_resolve;
          Alcotest.test_case "well-formedness validator" `Quick test_registry_validator;
          Alcotest.test_case "registration errors" `Quick test_registry_registration_errors;
        ] );
      ( "config",
        [
          Alcotest.test_case "figure 8 yaml" `Quick test_config_yaml_figure8;
          Alcotest.test_case "roundtrip" `Quick test_config_roundtrip;
          Alcotest.test_case "mask string" `Quick test_mask_string;
        ] );
      ( "generator",
        [
          Alcotest.test_case "zol integration plan" `Quick test_generator_zol;
          Alcotest.test_case "decoupled scoreboard" `Quick test_generator_decoupled_scoreboard;
          Alcotest.test_case "arbitration" `Quick test_generator_arbitration;
          Alcotest.test_case "validation errors" `Quick test_generator_rejects_bad_configs;
        ] );
    ]
