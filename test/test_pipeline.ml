(* Tests for the structural pipeline simulator: base-ISA programs against
   the native ISS, and ISAX programs (through the actual generated RTL,
   stage by stage) against the reference interpreter / cost-model runs. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run_pipeline compiled ?(setup = fun _ -> ()) prog =
  let tu = compiled.Longnail.Flow.unit_ in
  let enc = Riscv.Machine.isax_encoder tu in
  let words = Riscv.Asm.assemble ~custom:enc prog in
  let p = Riscv.Pipeline.create compiled in
  Riscv.Pipeline.load_program p words;
  setup p;
  let cycles = Riscv.Pipeline.run p in
  (p, cycles)

let rv32i_compiled =
  lazy (Longnail.Flow.compile Scaiev.Datasheet.vexriscv (Coredsl.compile_rv32i ()))

let test_base_alu_program () =
  let p, _ =
    run_pipeline (Lazy.force rv32i_compiled)
      "li a0, 5\nli a1, 7\nadd a2, a0, a1\nsub a3, a2, a0\nxor a4, a2, a3\nebreak"
  in
  check_int "a2" 12 (Riscv.Pipeline.read_gpr p 12);
  check_int "a3" 7 (Riscv.Pipeline.read_gpr p 13);
  check_int "a4" (12 lxor 7) (Riscv.Pipeline.read_gpr p 14)

let test_base_forwarding_chain () =
  (* back-to-back dependent instructions exercise the bypass network *)
  let p, _ =
    run_pipeline (Lazy.force rv32i_compiled)
      "li a0, 1\nadd a0, a0, a0\nadd a0, a0, a0\nadd a0, a0, a0\nadd a0, a0, a0\nebreak"
  in
  check_int "2^4" 16 (Riscv.Pipeline.read_gpr p 10)

let test_base_loop_program () =
  (* a real loop with branches: sum 1..10 *)
  let p, _ =
    run_pipeline (Lazy.force rv32i_compiled)
      "li a0, 0\nli a1, 10\nloop:\nadd a0, a0, a1\naddi a1, a1, -1\nbnez a1, loop\nebreak"
  in
  check_int "sum 1..10" 55 (Riscv.Pipeline.read_gpr p 10)

let test_base_memory_program () =
  let p, _ =
    run_pipeline (Lazy.force rv32i_compiled)
      "li a1, 0x100\nli a2, 1234\nsw a2, 0(a1)\nnop\nnop\nnop\nnop\nnop\nlw a3, 0(a1)\nadd a4, a3, a3\nebreak"
  in
  check_int "store/load roundtrip" 1234 (Riscv.Pipeline.read_gpr p 13);
  check_int "dependent use" 2468 (Riscv.Pipeline.read_gpr p 14)

let test_isax_dotprod_in_pipeline () =
  let tu = Isax.Registry.compile_by_name "dotprod" in
  let c = Longnail.Flow.compile Scaiev.Datasheet.vexriscv tu in
  let p, _ =
    run_pipeline c
      "li a0, 67305985\nli a2, 673059850\n.isax DOTP rs1=a0, rs2=a2, rd=a4\nadd a5, a4, a4\nebreak"
  in
  (* a0 = 0x04030201 bytes 1,2,3,4; a2 = 0x281E140A bytes 10,20,30,40 *)
  check_int "dotp through the pipe" 300 (Riscv.Pipeline.read_gpr p 14);
  check_int "dependent consumer forwarded" 600 (Riscv.Pipeline.read_gpr p 15)

let test_isax_back_to_back () =
  (* two custom instructions in flight simultaneously inside ONE module
     instance: the second enters while the first is still in the pipe *)
  let tu = Isax.Registry.compile_by_name "sbox" in
  let c = Longnail.Flow.compile Scaiev.Datasheet.vexriscv tu in
  let p, _ =
    run_pipeline c
      "li a0, 0x53\nli a1, 0x52\n.isax SUBBYTES rs1=a0, rd=a2\n.isax SUBBYTES rs1=a1, rd=a3\nebreak"
  in
  (* sbox(0x53) = 0xED, sbox(0x52) = 0x00; upper bytes sbox(0) = 0x63 *)
  check_int "first" 0x636363ED (Riscv.Pipeline.read_gpr p 12);
  check_int "second" 0x63636300 (Riscv.Pipeline.read_gpr p 13)

let test_isax_sqrt_deep_module () =
  (* the sqrt module is deeper than the core pipeline: the commit point
     extends and the dependent consumer waits for the real RTL result *)
  let tu = Isax.Registry.compile_by_name "sqrt_tightly" in
  let c = Longnail.Flow.compile Scaiev.Datasheet.vexriscv tu in
  let p, cycles =
    run_pipeline c "li a1, 1764\n.isax SQRT rs1=a1, rd=a2\nsrli a3, a2, 16\nebreak"
  in
  check_int "sqrt(1764) Q16.16" (42 * 65536) (Riscv.Pipeline.read_gpr p 12);
  check_int "dependent shift" 42 (Riscv.Pipeline.read_gpr p 13);
  check_bool "took at least the module depth" true (cycles > 10)

let test_isax_autoinc_memory () =
  let tu = Isax.Registry.compile_by_name "autoinc" in
  let c = Longnail.Flow.compile Scaiev.Datasheet.vexriscv tu in
  let p, _ =
    run_pipeline c
      ~setup:(fun p ->
        Riscv.Pipeline.store_word p 0x200 111;
        Riscv.Pipeline.store_word p 0x204 222)
      "li a1, 0x200\n.isax AI_SETUP rs1=a1, imm=0\n.isax AI_LW rd=a2\n.isax AI_LW rd=a3\nadd a4, a2, a3\nebreak"
  in
  check_int "first load" 111 (Riscv.Pipeline.read_gpr p 12);
  check_int "second load (ADDR forwarded in custom regfile)" 222 (Riscv.Pipeline.read_gpr p 13);
  check_int "sum" 333 (Riscv.Pipeline.read_gpr p 14)

let test_isax_zol_zero_overhead () =
  (* the ZOL always-block redirects the fetch: the body runs with no
     loop-control instructions at all, through the real RTL every cycle *)
  let tu = Isax.Registry.compile_by_name "zol" in
  let c = Longnail.Flow.compile Scaiev.Datasheet.vexriscv tu in
  let p, _ =
    run_pipeline c
      "li a0, 0\n.isax setup_zol uimmL=9, uimmS=6\nbody:\naddi a0, a0, 1\naddi a0, a0, 1\nebreak"
  in
  (* body of 2 instructions runs 10 times (fall-in + 9 redirects) *)
  check_int "20 increments" 20 (Riscv.Pipeline.read_gpr p 10)

let test_pipeline_matches_machine () =
  (* the Section 5.5 program: structural pipeline and cost-model machine
     must agree on the complete architectural result *)
  let tu = Isax.Registry.compile_by_name "autoinc+zol" in
  let c = Longnail.Flow.compile Scaiev.Datasheet.vexriscv tu in
  let n = 8 in
  let enc = Riscv.Machine.isax_encoder tu in
  let words = Riscv.Asm.assemble ~custom:enc (Riscv.Case_study.isax_program n) in
  let p = Riscv.Pipeline.create c in
  Riscv.Pipeline.load_program p words;
  Riscv.Pipeline.write_gpr p 2 0x8000;
  for i = 0 to n - 1 do
    Riscv.Pipeline.store_word p (0x1000 + (4 * i)) (i + 1)
  done;
  ignore (Riscv.Pipeline.run p);
  let m = Riscv.Machine.of_compiled c in
  Riscv.Machine.write_gpr m 2 0x8000;
  Riscv.Machine.load_program m words;
  for i = 0 to n - 1 do
    Riscv.Machine.store_word m (0x1000 + (4 * i)) (i + 1)
  done;
  ignore (Riscv.Machine.run m);
  check_int "checksum" (Riscv.Case_study.expected_sum n) (Riscv.Pipeline.read_gpr p 10);
  List.iter
    (fun r ->
      check_int (Printf.sprintf "x%d" r) (Riscv.Machine.read_gpr m r)
        (Riscv.Pipeline.read_gpr p r))
    (List.init 32 Fun.id)

let test_pipeline_other_cores () =
  (* the same ISAX program runs structurally on cores with different
     operand/writeback stages (portability, made literal) *)
  List.iter
    (fun core ->
      let tu = Isax.Registry.compile_by_name "dotprod" in
      let c = Longnail.Flow.compile core tu in
      let enc = Riscv.Machine.isax_encoder tu in
      let words =
        Riscv.Asm.assemble ~custom:enc
          "li a0, 67305985\nli a2, 673059850\n.isax DOTP rs1=a0, rs2=a2, rd=a4\nebreak"
      in
      let p = Riscv.Pipeline.create c in
      Riscv.Pipeline.load_program p words;
      ignore (Riscv.Pipeline.run p);
      check_int (core.Scaiev.Datasheet.core_name ^ " dotp") 300 (Riscv.Pipeline.read_gpr p 14))
    (* every registered pipelined core, mriscv included; the structural
       pipeline does not model FSM-sequenced cores (PicoRV32) *)
    (List.filter
       (fun (c : Scaiev.Datasheet.t) -> not c.is_fsm)
       (Scaiev.Core_registry.datasheets ()))

let test_mriscv_case_study_engines () =
  (* the fifth (registry-only) core: the Section 5.5 case-study program
     through all three execution engines — structural pipeline with the
     generated RTL, registry-backed cycle-cost machine, RTL-in-the-loop
     — must agree on the architectural result *)
  let core = Scaiev.Core_registry.mriscv in
  let tu = Isax.Registry.compile_by_name "autoinc+zol" in
  let c = Longnail.Flow.compile core tu in
  let n = 6 in
  let enc = Riscv.Machine.isax_encoder tu in
  let words = Riscv.Asm.assemble ~custom:enc (Riscv.Case_study.isax_program n) in
  let expect = Riscv.Case_study.expected_sum n in
  let p = Riscv.Pipeline.create c in
  Riscv.Pipeline.load_program p words;
  Riscv.Pipeline.write_gpr p 2 0x8000;
  for i = 0 to n - 1 do
    Riscv.Pipeline.store_word p (0x1000 + (4 * i)) (i + 1)
  done;
  ignore (Riscv.Pipeline.run p);
  check_int "pipeline checksum" expect (Riscv.Pipeline.read_gpr p 10);
  let m = Riscv.Machine.of_compiled c in
  Riscv.Machine.write_gpr m 2 0x8000;
  Riscv.Machine.load_program m words;
  for i = 0 to n - 1 do
    Riscv.Machine.store_word m (0x1000 + (4 * i)) (i + 1)
  done;
  ignore (Riscv.Machine.run m);
  check_int "machine checksum" expect (Riscv.Machine.read_gpr m 10);
  let rl = Riscv.Rtl_loop.create c in
  Riscv.Rtl_loop.load_program rl words;
  (Coredsl.Interp.reg_array rl.Riscv.Rtl_loop.st "X").(2) <- Bitvec.of_int (Bitvec.unsigned_ty 32) 0x8000;
  for i = 0 to n - 1 do
    Coredsl.Interp.write_mem rl.Riscv.Rtl_loop.st "MEM" (0x1000 + (4 * i)) 4
      (Bitvec.of_int (Bitvec.unsigned_ty 32) (i + 1))
  done;
  ignore (Riscv.Rtl_loop.run rl);
  check_int "rtl-loop checksum" expect (Riscv.Rtl_loop.read_gpr rl 10)

let test_pipeline_sparkle_orca () =
  (* ORCA reads operands late (stage 3): the module ports follow *)
  let tu = Isax.Registry.compile_by_name "sparkle" in
  let c = Longnail.Flow.compile Scaiev.Datasheet.orca tu in
  let enc = Riscv.Machine.isax_encoder tu in
  let words =
    Riscv.Asm.assemble ~custom:enc
      "li a0, 3\nli a1, 4\n.isax ALZ_X rs1=a0, rs2=a1, rd=a2\n.isax ALZ_Y rs1=a0, rs2=a1, rd=a3\nebreak"
  in
  let p = Riscv.Pipeline.create c in
  Riscv.Pipeline.load_program p words;
  ignore (Riscv.Pipeline.run p);
  (* reference via interpreter *)
  let st = Coredsl.Interp.create tu in
  let exec name rd =
    let ti = Option.get (Coredsl.Tast.find_tinstr tu name) in
    let u32 = Bitvec.unsigned_ty 32 in
    Coredsl.Interp.write_regfile st "X" 1 (Bitvec.of_int u32 3);
    Coredsl.Interp.write_regfile st "X" 2 (Bitvec.of_int u32 4);
    let w =
      Coredsl.Interp.encode ti
        [ ("rs1", Bitvec.of_int u32 1); ("rs2", Bitvec.of_int u32 2); ("rd", Bitvec.of_int u32 rd) ]
    in
    Coredsl.Interp.exec_instr st ti ~instr_word:w;
    Bitvec.to_int (Coredsl.Interp.read_regfile st "X" rd)
  in
  check_int "alz_x" (exec "ALZ_X" 12) (Riscv.Pipeline.read_gpr p 12);
  check_int "alz_y" (exec "ALZ_Y" 13) (Riscv.Pipeline.read_gpr p 13)

let test_pipeline_arbitration () =
  (* two different ISAX modules write the same custom register in program
     order: AI_SETUP then AI_SW both update ADDR; the committed value must
     reflect the deterministic (program) order, Section 3.3 *)
  let tu = Isax.Registry.compile_by_name "autoinc" in
  let c = Longnail.Flow.compile Scaiev.Datasheet.vexriscv tu in
  let enc = Riscv.Machine.isax_encoder tu in
  let words =
    Riscv.Asm.assemble ~custom:enc
      "li a1, 0x300\nli a2, 77\n.isax AI_SETUP rs1=a1, imm=0\n.isax AI_SW rs2=a2\n.isax AI_SW rs2=a2\nebreak"
  in
  let p = Riscv.Pipeline.create c in
  Riscv.Pipeline.load_program p words;
  ignore (Riscv.Pipeline.run p);
  (* ADDR = 0x300 (setup), then two stores increment it to 0x308 *)
  check_int "ADDR after arbitration" 0x308
    (Bitvec.to_int (Coredsl.Interp.read_reg p.Riscv.Pipeline.st "ADDR"));
  check_int "first store landed" 77
    (Bitvec.to_int (Coredsl.Interp.read_mem p.Riscv.Pipeline.st "MEM" 0x300 4));
  check_int "second store landed" 77
    (Bitvec.to_int (Coredsl.Interp.read_mem p.Riscv.Pipeline.st "MEM" 0x304 4))

let test_decoupled_overtaking () =
  (* the decoupled sqrt detaches at writeback: ten independent followers
     commit while it computes, so the program finishes well before the
     tightly-coupled variant, which stalls the whole core (Section 3.2) *)
  let independent = String.concat "\n" (List.init 10 (fun i -> Printf.sprintf "addi t%d, zero, %d" (i mod 3) i)) in
  let run isax instr =
    let tu = Isax.Registry.compile_by_name isax in
    let c = Longnail.Flow.compile Scaiev.Datasheet.vexriscv tu in
    let enc = Riscv.Machine.isax_encoder tu in
    let words =
      Riscv.Asm.assemble ~custom:enc
        (Printf.sprintf "li a1, 1764\n.isax %s rs1=a1, rd=a2\n%s\nsrli a3, a2, 16\nebreak" instr
           independent)
    in
    let p = Riscv.Pipeline.create c in
    Riscv.Pipeline.load_program p words;
    let cycles = Riscv.Pipeline.run p in
    check_int (isax ^ " result") 42 (Riscv.Pipeline.read_gpr p 13);
    cycles
  in
  let tightly = run "sqrt_tightly" "SQRT" in
  let decoupled = run "sqrt_decoupled" "SQRT_D" in
  check_bool
    (Printf.sprintf "decoupled (%d cycles) beats tightly (%d cycles)" decoupled tightly)
    true
    (decoupled < tightly)

let test_decoupled_dependent_stalls () =
  (* a dependent reader right behind the decoupled sqrt waits on the
     scoreboard but still gets the correct RTL result *)
  let tu = Isax.Registry.compile_by_name "sqrt_decoupled" in
  let c = Longnail.Flow.compile Scaiev.Datasheet.vexriscv tu in
  let enc = Riscv.Machine.isax_encoder tu in
  let words =
    Riscv.Asm.assemble ~custom:enc
      "li a1, 1764\n.isax SQRT_D rs1=a1, rd=a2\nsrli a3, a2, 16\nadd a4, a3, a3\nebreak"
  in
  let p = Riscv.Pipeline.create c in
  Riscv.Pipeline.load_program p words;
  ignore (Riscv.Pipeline.run p);
  check_int "sqrt" 42 (Riscv.Pipeline.read_gpr p 13);
  check_int "chained use" 84 (Riscv.Pipeline.read_gpr p 14)

(* ---- pipeline profiling (the Figure-9 observability contract) ---- *)

let test_profile_stage_coverage () =
  (* every Figure-9 stage appears exactly once per compiled functionality,
     for instructions and always-blocks alike *)
  List.iter
    (fun isax ->
      let tu = Isax.Registry.compile_by_name isax in
      let obs = Obs.create ~name:"compile" () in
      let c =
        Longnail.Flow.compile
          ~request:(Longnail.Flow.Request.make ~obs ())
          Scaiev.Datasheet.vexriscv tu
      in
      Obs.finish obs;
      Obs.validate (Obs.root obs);
      let func_spans =
        List.filter
          (fun sp -> Obs.generic_name sp.Obs.sp_name = "func:*")
          (Obs.all_spans (Obs.root obs))
      in
      check_int (isax ^ " one span per functionality") (List.length c.Longnail.Flow.funcs)
        (List.length func_spans);
      List.iter
        (fun fsp ->
          List.iter
            (fun stage ->
              check_int
                (Printf.sprintf "%s/%s has one %s stage" isax fsp.Obs.sp_name stage)
                1
                (List.length (Obs.find_spans fsp stage)))
            Longnail.Flow.stage_names)
        func_spans)
    [ "dotprod"; "zol" ]

let test_profile_optimize_monotonic () =
  (* optimization passes only ever shrink the CDFG: op counts are
     monotonically non-increasing across the optimize pipeline, except for
     lower_constant_shifts, which is a lowering (a constant shift becomes
     a handful of free wiring ops) rather than a reduction *)
  List.iter
    (fun isax ->
      let tu = Isax.Registry.compile_by_name isax in
      let obs = Obs.create ~name:"compile" () in
      ignore
        (Longnail.Flow.compile
           ~request:(Longnail.Flow.Request.make ~obs ())
           Scaiev.Datasheet.vexriscv tu);
      let pass_spans =
        List.filter
          (fun sp -> Obs.generic_name sp.Obs.sp_name = "pass:*")
          (Obs.all_spans (Obs.root obs))
      in
      check_bool (isax ^ " recorded pass spans") true (pass_spans <> []);
      List.iter
        (fun sp ->
          let before = Option.get (Obs.get_int sp "ops_before") in
          let after = Option.get (Obs.get_int sp "ops_after") in
          if sp.Obs.sp_name <> "pass:lower_constant_shifts" then
            check_bool
              (Printf.sprintf "%s %s non-increasing (%d -> %d)" isax sp.Obs.sp_name before
                 after)
              true (after <= before))
        pass_spans;
      (* and the whole optimize stage shrinks (or keeps) the graph *)
      List.iter
        (fun osp ->
          let before = Option.get (Obs.get_int osp "ops_before") in
          let after = Option.get (Obs.get_int osp "ops_after") in
          check_bool
            (Printf.sprintf "%s optimize total %d -> %d" isax before after)
            true (after <= before))
        (Obs.find_spans (Obs.root obs) "optimize"))
    [ "dotprod"; "sparkle"; "autoinc+zol" ]

let test_profile_optimize_stats_api () =
  (* the stats-returning entry point agrees with graph reality *)
  let tu = Isax.Registry.compile_by_name "dotprod" in
  let dotp = Option.get (Coredsl.Tast.find_tinstr tu "DOTP") in
  let hg = Ir.Hlir.lower_instruction tu dotp in
  let lg = Ir.Lil.of_hlir tu.elab ~fields:dotp.fields hg in
  let g', stats = Ir.Passes.optimize_with_stats lg in
  check_bool "trace non-empty" true (stats <> []);
  check_int "first pass sees the input graph" (Ir.Passes.op_count lg)
    (List.hd stats).Ir.Passes.ps_ops_before;
  check_int "last pass produced the output graph" (Ir.Passes.op_count g')
    (List.nth stats (List.length stats - 1)).Ir.Passes.ps_ops_after;
  (* consecutive stats chain: each pass starts from the previous result *)
  ignore
    (List.fold_left
       (fun prev (st : Ir.Passes.pass_stat) ->
         (match prev with
         | Some p -> check_int ("chained " ^ st.ps_pass) p st.ps_ops_before
         | None -> ());
         Some st.ps_ops_after)
       None stats)

(* ---- diagnostics provenance through the full pipeline ---- *)

let test_infeasible_error_cites_source () =
  (* the PC write sits behind a memory load and a multiply chain; with a
     tight cycle time it cannot reach WrPC's native window on ORCA. The
     E0401 diagnostic must cite the CoreDSL span of the culprit operation,
     which has to survive hlir -> lil -> optimize -> schedule. *)
  let src =
    {|import "RV32I.core_desc"
InstructionSet T extends RV32I {
  instructions {
    LONGJMP {
      encoding: imm[11:0] :: rs1[4:0] :: 3'b111 :: 5'b00000 :: 7'b1111011;
      behavior: {
        unsigned<32> a = MEM[X[rs1]+3:X[rs1]];
        unsigned<32> b = MEM2;
        PC = (unsigned<32>)(a * a * b * b);
      }
    }
  }
  architectural_state { register unsigned<32> MEM2; }
}
|}
  in
  let tu = Coredsl.compile ~file:"longjmp.core_desc" ~target:"T" src in
  try
    ignore
      (Longnail.Flow.compile
         ~request:
           (Longnail.Flow.Request.make ~cycle_time:0.9
              ~delay:Longnail.Delay_model.Physical ())
         Scaiev.Datasheet.orca tu);
    Alcotest.fail "expected infeasible schedule"
  with Diag.Fatal (d :: _) ->
    Alcotest.(check string) "stable code" "E0401" d.Diag.code;
    (match d.Diag.span with
    | None -> Alcotest.fail "infeasibility diagnostic lost its source span"
    | Some sp ->
        check_bool "span valid" true (Diag.span_is_valid sp);
        Alcotest.(check string) "cites the CoreDSL file" "longjmp.core_desc" sp.Diag.sp_file;
        (* the culprit is an interface write inside the behavior block
           (lines 7-9: the load, the register read, the PC assignment) *)
        check_bool
          (Printf.sprintf "line %d inside the behavior block" sp.Diag.sp_line)
          true
          (sp.Diag.sp_line >= 7 && sp.Diag.sp_line <= 9));
    (* the note explains the window violation in stage terms *)
    check_bool "note explains the stage window" true
      (List.exists
         (fun n ->
           let sub = "cannot start before stage" in
           let nl = String.length sub in
           let rec go i =
             i + nl <= String.length n && (String.sub n i nl = sub || go (i + 1))
           in
           go 0)
         d.Diag.notes)

(* random base-ISA programs: the pipeline must match the native ISS *)
let prop_pipeline_matches_iss =
  QCheck.Test.make ~name:"pipeline matches ISS on random ALU programs" ~count:30 QCheck.int
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let rnd n = Random.State.int rng n in
      let lines =
        List.init 20 (fun _ ->
            match rnd 5 with
            | 0 -> Printf.sprintf "addi x%d, x%d, %d" (1 + rnd 15) (rnd 16) (rnd 2048 - 1024)
            | 1 -> Printf.sprintf "add x%d, x%d, x%d" (1 + rnd 15) (rnd 16) (rnd 16)
            | 2 -> Printf.sprintf "sub x%d, x%d, x%d" (1 + rnd 15) (rnd 16) (rnd 16)
            | 3 -> Printf.sprintf "xor x%d, x%d, x%d" (1 + rnd 15) (rnd 16) (rnd 16)
            | _ -> Printf.sprintf "slli x%d, x%d, %d" (1 + rnd 15) (rnd 16) (rnd 32))
      in
      let prog = String.concat "\n" lines in
      let words = Riscv.Asm.assemble prog in
      let iss = Riscv.Iss.create () in
      List.iteri (fun i w -> Riscv.Iss.write_word iss (4 * i) w) words;
      List.iter (fun _ -> Riscv.Iss.step iss) words;
      let p = Riscv.Pipeline.create (Lazy.force rv32i_compiled) in
      Riscv.Pipeline.load_program p (words @ [ 0x00100073 (* ebreak *) ]);
      ignore (Riscv.Pipeline.run p);
      List.for_all
        (fun r -> Riscv.Iss.read_reg iss r = Riscv.Pipeline.read_gpr p r)
        (List.init 32 Fun.id))

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_pipeline_matches_iss ]

let () =
  Alcotest.run "pipeline"
    [
      ( "base",
        [
          Alcotest.test_case "alu program" `Quick test_base_alu_program;
          Alcotest.test_case "forwarding chain" `Quick test_base_forwarding_chain;
          Alcotest.test_case "loop with branches" `Quick test_base_loop_program;
          Alcotest.test_case "memory" `Quick test_base_memory_program;
        ] );
      ( "isax",
        [
          Alcotest.test_case "dotprod in pipeline" `Quick test_isax_dotprod_in_pipeline;
          Alcotest.test_case "back-to-back in one module" `Quick test_isax_back_to_back;
          Alcotest.test_case "deep sqrt module" `Quick test_isax_sqrt_deep_module;
          Alcotest.test_case "autoinc memory" `Quick test_isax_autoinc_memory;
          Alcotest.test_case "zol zero overhead" `Quick test_isax_zol_zero_overhead;
          Alcotest.test_case "matches cost-model machine" `Slow test_pipeline_matches_machine;
          Alcotest.test_case "other cores" `Quick test_pipeline_other_cores;
          Alcotest.test_case "mriscv through all engines" `Slow test_mriscv_case_study_engines;
          Alcotest.test_case "sparkle on ORCA" `Quick test_pipeline_sparkle_orca;
          Alcotest.test_case "write arbitration order" `Quick test_pipeline_arbitration;
          Alcotest.test_case "decoupled overtaking" `Quick test_decoupled_overtaking;
          Alcotest.test_case "decoupled dependent stalls" `Quick test_decoupled_dependent_stalls;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "infeasible error cites source" `Quick
            test_infeasible_error_cites_source;
        ] );
      ( "profiling",
        [
          Alcotest.test_case "stage coverage" `Quick test_profile_stage_coverage;
          Alcotest.test_case "optimize monotonic" `Quick test_profile_optimize_monotonic;
          Alcotest.test_case "optimize stats api" `Quick test_profile_optimize_stats_api;
        ] );
      ("properties", qcheck_cases);
    ]
