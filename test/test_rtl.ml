(* Tests for the RTL layer: netlist validation, the cycle-accurate
   simulator, and SystemVerilog emission. *)

open Rtl

let u w = Bitvec.unsigned_ty w
let bv w v = Bitvec.of_int (u w) v
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let const name w v =
  Netlist.Comb { out = name; width = w; op = "hw.constant"; attrs = [ ("value", Ir.Mir.A_bv (bv w v)) ]; inputs = [] }

(* a 4-bit counter: c <= c + 1 *)
let counter_module =
  {
    Netlist.mod_name = "counter";
    inputs = [];
    outputs = [ { port_name = "count"; port_width = 4; port_signal = "c" } ];
    nodes =
      [
        const "one" 4 1;
        Netlist.Comb { out = "next"; width = 4; op = "comb.add"; attrs = []; inputs = [ "c"; "one" ] };
        Netlist.Reg { out = "c"; width = 4; next = "next"; enable = None; init = Some (bv 4 0) };
      ];
  }

let test_sim_counter () =
  let s = Sim.create counter_module in
  for expect = 0 to 20 do
    Sim.eval s;
    check_int (Printf.sprintf "count at %d" expect) (expect mod 16)
      (Bitvec.to_int (Sim.output s "count"));
    Sim.clock s
  done

let test_sim_stall_enable () =
  (* register with an enable driven by an input *)
  let m =
    {
      Netlist.mod_name = "stallable";
      inputs =
        [
          { Netlist.port_name = "d"; port_width = 8; port_signal = "d" };
          { port_name = "en"; port_width = 1; port_signal = "en" };
        ];
      outputs = [ { port_name = "q"; port_width = 8; port_signal = "q" } ];
      nodes = [ Netlist.Reg { out = "q"; width = 8; next = "d"; enable = Some "en"; init = None } ];
    }
  in
  let s = Sim.create m in
  Sim.cycle s [ ("d", bv 8 0xAA); ("en", bv 1 1) ];
  Sim.eval s;
  check_int "loaded" 0xAA (Bitvec.to_int (Sim.output s "q"));
  Sim.cycle s [ ("d", bv 8 0x55); ("en", bv 1 0) ];
  Sim.eval s;
  check_int "stalled" 0xAA (Bitvec.to_int (Sim.output s "q"));
  Sim.cycle s [ ("d", bv 8 0x55); ("en", bv 1 1) ];
  Sim.eval s;
  check_int "released" 0x55 (Bitvec.to_int (Sim.output s "q"))

let test_sim_rom () =
  let m =
    {
      Netlist.mod_name = "rom";
      inputs = [ { Netlist.port_name = "i"; port_width = 2; port_signal = "i" } ];
      outputs = [ { port_name = "o"; port_width = 8; port_signal = "o" } ];
      nodes = [ Netlist.Rom { out = "o"; width = 8; table = [| bv 8 10; bv 8 20; bv 8 30; bv 8 40 |]; index = "i" } ];
    }
  in
  let s = Sim.create m in
  List.iter
    (fun (i, expect) ->
      Sim.set_input s "i" (bv 2 i);
      Sim.eval s;
      check_int "rom lookup" expect (Bitvec.to_int (Sim.output s "o")))
    [ (0, 10); (1, 20); (2, 30); (3, 40) ]

let test_comb_cycle_detected () =
  let m =
    {
      Netlist.mod_name = "loopy";
      inputs = [];
      outputs = [];
      nodes =
        [
          Netlist.Comb { out = "a"; width = 1; op = "comb.xor"; attrs = []; inputs = [ "b"; "b" ] };
          Netlist.Comb { out = "b"; width = 1; op = "comb.xor"; attrs = []; inputs = [ "a"; "a" ] };
        ];
    }
  in
  try
    Netlist.validate m;
    Alcotest.fail "expected cycle error"
  with Netlist.Netlist_error _ -> ()

let test_undefined_signal_detected () =
  let m =
    {
      Netlist.mod_name = "dangling";
      inputs = [];
      outputs = [ { Netlist.port_name = "o"; port_width = 1; port_signal = "nowhere" } ];
      nodes = [];
    }
  in
  try
    Netlist.validate m;
    Alcotest.fail "expected undefined signal"
  with Netlist.Netlist_error _ -> ()

let test_stats () =
  let st = Netlist.stats counter_module in
  check_int "regs" 1 st.Netlist.n_registers;
  check_int "reg bits" 4 st.Netlist.register_bits;
  check_int "combs" 2 st.Netlist.n_comb_nodes

let test_sv_emission () =
  let sv = Sv_emit.emit counter_module in
  check_bool "module header" true (contains sv "module counter(");
  check_bool "always_ff" true (contains sv "always_ff @(posedge clk)");
  check_bool "reset value" true (contains sv "if (rst)");
  check_bool "assign" true (contains sv "assign next = c + one;");
  check_bool "endmodule" true (contains sv "endmodule")

let test_sv_generated_isax () =
  (* SV emission of a real generated module resembles Figure 5d *)
  let tu = Coredsl.compile_rv32i () in
  let core = Scaiev.Datasheet.vexriscv in
  let addi = Option.get (Coredsl.Tast.find_tinstr tu "ADDI") in
  let f = Longnail.Flow.compile_functionality core tu (`Instr addi) in
  let sv = f.Longnail.Flow.cf_sv in
  check_bool "module named ADDI" true (contains sv "module ADDI(");
  check_bool "instr word port" true (contains sv "instr_word_");
  check_bool "rs1 port" true (contains sv "rs1_");
  check_bool "result port" true (contains sv "res_");
  check_bool "no unmapped ops" true (not (contains sv "lil."))

let test_vcd_trace () =
  let vcd =
    Rtl.Vcd.trace counter_module ~cycles:8 ~drive:(fun _ -> [])
  in
  check_bool "header" true (contains vcd "$timescale 1ns $end");
  check_bool "module scope" true (contains vcd "$scope module counter $end");
  check_bool "declares count wire" true (contains vcd "$var wire 4");
  check_bool "has time marks" true (contains vcd "#0\n");
  check_bool "has vector changes" true (contains vcd "b0001 ");
  (* the counter value changes every cycle: at least 8 time marks *)
  let marks = List.length (String.split_on_char '#' vcd) - 1 in
  check_bool "8 time steps" true (marks >= 8)

(* ---- compiled engine ---- *)

let engines = [ ("interp", Engine.Interp); ("compiled", Engine.Compiled) ]

let test_compiled_counter () =
  let s = Engine.create ~kind:Engine.Compiled counter_module in
  for expect = 0 to 20 do
    Engine.eval s;
    check_int (Printf.sprintf "count at %d" expect) (expect mod 16)
      (Bitvec.to_int (Engine.output s "count"));
    Engine.clock s
  done

let test_compiled_stall_enable () =
  let m =
    {
      Netlist.mod_name = "stallable";
      inputs =
        [
          { Netlist.port_name = "d"; port_width = 8; port_signal = "d" };
          { port_name = "en"; port_width = 1; port_signal = "en" };
        ];
      outputs = [ { port_name = "q"; port_width = 8; port_signal = "q" } ];
      nodes = [ Netlist.Reg { out = "q"; width = 8; next = "d"; enable = Some "en"; init = None } ];
    }
  in
  let s = Engine.create ~kind:Engine.Compiled m in
  Engine.cycle s [ ("d", bv 8 0xAA); ("en", bv 1 1) ];
  Engine.eval s;
  check_int "loaded" 0xAA (Bitvec.to_int (Engine.output s "q"));
  Engine.cycle s [ ("d", bv 8 0x55); ("en", bv 1 0) ];
  Engine.eval s;
  check_int "stalled" 0xAA (Bitvec.to_int (Engine.output s "q"));
  Engine.cycle s [ ("d", bv 8 0x55); ("en", bv 1 1) ];
  Engine.eval s;
  check_int "released" 0x55 (Bitvec.to_int (Engine.output s "q"))

let test_compiled_rom () =
  let m =
    {
      Netlist.mod_name = "rom";
      inputs = [ { Netlist.port_name = "i"; port_width = 2; port_signal = "i" } ];
      outputs = [ { port_name = "o"; port_width = 8; port_signal = "o" } ];
      nodes = [ Netlist.Rom { out = "o"; width = 8; table = [| bv 8 10; bv 8 20; bv 8 30; bv 8 40 |]; index = "i" } ];
    }
  in
  let s = Engine.create ~kind:Engine.Compiled m in
  List.iter
    (fun (i, expect) ->
      Engine.set_input s "i" (bv 2 i);
      Engine.eval s;
      check_int "rom lookup" expect (Bitvec.to_int (Engine.output s "o")))
    [ (0, 10); (1, 20); (2, 30); (3, 40) ]

let check_traces_equal name a b =
  match Vcd.first_divergence a b with
  | None -> ()
  | Some (line, l, r) ->
      Alcotest.failf "%s: engine traces diverge at VCD line %d: interp %S, compiled %S" name
        line l r

let test_cross_engine_vcd_counter () =
  let trace kind = Vcd.trace ~engine:kind counter_module ~cycles:12 ~drive:(fun _ -> []) in
  check_traces_equal "counter" (trace Engine.Interp) (trace Engine.Compiled)

(* the generated ISAX modules exercise extract/concat/mux/rom decoding
   paths absent from the handwritten fixtures *)
let test_cross_engine_vcd_isax () =
  let tu = Coredsl.compile_rv32i () in
  let core = Scaiev.Datasheet.vexriscv in
  let addi = Option.get (Coredsl.Tast.find_tinstr tu "ADDI") in
  let f = Longnail.Flow.compile_functionality core tu (`Instr addi) in
  let m = f.Longnail.Flow.cf_hw.Longnail.Hwgen.netlist in
  let drive cycle =
    List.map
      (fun (p : Netlist.port) ->
        (p.port_name, Bitvec.of_int (u p.port_width) (Hashtbl.hash (p.port_name, cycle))))
      m.Netlist.inputs
  in
  let trace kind = Vcd.trace ~engine:kind m ~cycles:16 ~drive in
  check_traces_equal "ADDI" (trace Engine.Interp) (trace Engine.Compiled)

(* widths straddling the int-arena limit: 62 runs on the unboxed path,
   63/64/65 on the Bitvec fallback — both must match Comb_eval exactly *)
let test_wide_boundary_arith () =
  let module Bn = Bitvec.Bn in
  List.iter
    (fun w ->
      let ops =
        [ ("add", "comb.add", w); ("sub", "comb.sub", w); ("mul", "comb.mul", w);
          ("xor", "comb.xor", w); ("divu", "comb.divu", w); ("mods", "comb.mods", w);
          ("ult", "comb.icmp_ult", 1); ("slt", "comb.icmp_slt", 1) ]
      in
      let m =
        {
          Netlist.mod_name = "wide";
          inputs =
            [
              { Netlist.port_name = "a"; port_width = w; port_signal = "a" };
              { port_name = "b"; port_width = w; port_signal = "b" };
            ];
          outputs =
            List.map
              (fun (n, _, rw) -> { Netlist.port_name = "o_" ^ n; port_width = rw; port_signal = "o_" ^ n })
              ops;
          nodes =
            List.map
              (fun (n, op, rw) ->
                Netlist.Comb { out = "o_" ^ n; width = rw; op; attrs = []; inputs = [ "a"; "b" ] })
              ops;
        }
      in
      (* all-ones and the sign bit: the values the boundary gets wrong *)
      let av = Bitvec.of_bn (u w) (Bn.sub (Bn.pow2 w) Bn.one) in
      let bv_ = Bitvec.of_bn (u w) (Bn.pow2 (w - 1)) in
      List.iter
        (fun (kname, kind) ->
          let s = Engine.create ~kind m in
          Engine.set_input s "a" av;
          Engine.set_input s "b" bv_;
          Engine.eval s;
          List.iter
            (fun (n, op, rw) ->
              let direct =
                Ir.Comb_eval.eval ~name:op ~attrs:[] ~ops:[ av; bv_ ] ~result_width:rw
              in
              if not (Bitvec.equal_value (Engine.output s ("o_" ^ n)) direct) then
                Alcotest.failf "width %d, %s on %s engine disagrees with comb_eval" w op kname)
            ops)
        engines)
    [ 62; 63; 64; 65 ]

(* a wide accumulator register: the staged-commit path of the compiled
   engine must wrap at 2^65 exactly like the interpreter *)
let test_wide_register_accumulate () =
  let module Bn = Bitvec.Bn in
  let w = 65 in
  let m =
    {
      Netlist.mod_name = "acc65";
      inputs = [ { Netlist.port_name = "a"; port_width = w; port_signal = "a" } ];
      outputs = [ { port_name = "acc"; port_width = w; port_signal = "acc" } ];
      nodes =
        [
          Netlist.Comb { out = "next"; width = w; op = "comb.add"; attrs = []; inputs = [ "acc"; "a" ] };
          Netlist.Reg { out = "acc"; width = w; next = "next"; enable = None; init = Some (Bitvec.zero (u w)) };
        ];
    }
  in
  let step = Bitvec.of_bn (u w) (Bn.pow2 64) in
  List.iter
    (fun (kname, kind) ->
      let s = Engine.create ~kind m in
      Engine.set_input s "a" step;
      for _ = 1 to 3 do
        Engine.eval s;
        Engine.clock s
      done;
      Engine.eval s;
      (* 3 * 2^64 wraps to 2^64 at 65 bits *)
      let got = Bitvec.to_bn (Engine.output s "acc") in
      if Bn.to_string got <> Bn.to_string (Bn.pow2 64) then
        Alcotest.failf "%s engine: 65-bit accumulator holds %s, want 2^64" kname
          (Bn.to_string got))
    engines

let test_engine_kind_parse () =
  check_bool "interp" true (Engine.kind_of_string "interp" = Ok Engine.Interp);
  check_bool "compiled" true (Engine.kind_of_string "compiled" = Ok Engine.Compiled);
  (match Engine.kind_of_string "interpp" with
  | Error m -> check_bool "did-you-mean interp" true (contains m "did you mean 'interp'")
  | Ok _ -> Alcotest.fail "expected error");
  check_bool "backend sv" true (Backend.of_string "sv" = Ok Backend.Sv);
  check_bool "backend v2001" true (Backend.of_string "v2001" = Ok Backend.V2001);
  check_bool "exts" true (Backend.file_ext Backend.Sv = "sv" && Backend.file_ext Backend.V2001 = "v")

(* ---- Verilog-2001 backend ---- *)

let test_v2001_emission () =
  let v = V2001_emit.emit counter_module in
  check_bool "module header" true (contains v "module counter(");
  check_bool "always @(posedge clk)" true (contains v "always @(posedge clk)");
  check_bool "reset value" true (contains v "if (rst)");
  check_bool "assign" true (contains v "assign next = c + one;");
  check_bool "no always_ff" true (not (contains v "always_ff"));
  check_bool "no always_comb" true (not (contains v "always_comb"));
  check_bool "no logic decls" true (not (contains v "logic"));
  check_bool "own output lints clean" true (V2001_emit.lint v = []);
  check_bool "backend dispatch" true (Backend.emit Backend.V2001 counter_module = v);
  check_bool "sv backend unchanged" true (Backend.emit Backend.Sv counter_module = Sv_emit.emit counter_module)

let test_v2001_lint_catches_sv () =
  match V2001_emit.lint "module m;\nalways_comb begin\nend\nendmodule\n" with
  | [ msg ] ->
      check_bool "names keyword" true (contains msg "always_comb");
      check_bool "names line" true (contains msg "line 2")
  | other -> Alcotest.failf "expected one lint hit, got %d" (List.length other)

let test_v2001_generated_isax () =
  let tu = Coredsl.compile_rv32i () in
  let addi = Option.get (Coredsl.Tast.find_tinstr tu "ADDI") in
  let f = Longnail.Flow.compile_functionality Scaiev.Datasheet.vexriscv tu (`Instr addi) in
  let v = Backend.emit Backend.V2001 f.Longnail.Flow.cf_hw.Longnail.Hwgen.netlist in
  check_bool "module named ADDI" true (contains v "module ADDI(");
  check_bool "lints clean" true (V2001_emit.lint v = [])

(* property: the compiled engine and the interpreter produce byte-identical
   VCD traces on random width-consistent netlists (chains of binary ops and
   muxes over two w-bit inputs, a 1-bit condition, and a final register) *)
let prop_engines_agree =
  let binops =
    [| "comb.add"; "comb.sub"; "comb.mul"; "comb.and"; "comb.or"; "comb.xor";
       "comb.divu"; "comb.modu"; "comb.divs"; "comb.mods";
       "comb.shl"; "comb.shru"; "comb.shrs";
       "comb.icmp_eq"; "comb.icmp_ult"; "comb.icmp_slt"; "comb.mux" |]
  in
  QCheck.Test.make ~name:"compiled engine matches interpreter on random netlists" ~count:80
    (QCheck.triple
       (QCheck.oneofl [ 1; 8; 31; 32; 62; 63; 64; 65 ])
       (QCheck.list_of_size (QCheck.Gen.int_range 1 8)
          (QCheck.triple (QCheck.int_bound 1000) (QCheck.int_bound 1000) (QCheck.int_bound 1000)))
       (QCheck.int_bound 1_000_000))
    (fun (w, picks, seed) ->
      let wide = ref [ "a"; "b" ] and bits = ref [ "c" ] in
      let nodes =
        List.mapi
          (fun i (opi, x, y) ->
            let op = binops.(opi mod Array.length binops) in
            (* Comb_eval (the reference semantics for BOTH engines) raises
               when a shift amount exceeds the native int range, so shifts
               only make sense while operands fit in an int *)
            let op =
              match op with
              | ("comb.shl" | "comb.shru" | "comb.shrs") when w > 62 -> "comb.xor"
              | op -> op
            in
            let pick pool n = List.nth pool (n mod List.length pool) in
            let out = Printf.sprintf "n%d" i in
            let is_cmp = String.length op > 9 && String.sub op 0 9 = "comb.icmp" in
            let node =
              if op = "comb.mux" then
                Netlist.Comb
                  { out; width = w; op; attrs = [];
                    inputs = [ pick !bits opi; pick !wide x; pick !wide y ] }
              else
                Netlist.Comb
                  { out; width = (if is_cmp then 1 else w); op; attrs = [];
                    inputs = [ pick !wide x; pick !wide y ] }
            in
            if is_cmp then bits := out :: !bits else wide := out :: !wide;
            node)
          picks
      in
      let last = List.hd !wide in
      let m =
        {
          Netlist.mod_name = "rand";
          inputs =
            [
              { Netlist.port_name = "a"; port_width = w; port_signal = "a" };
              { port_name = "b"; port_width = w; port_signal = "b" };
              { port_name = "c"; port_width = 1; port_signal = "c" };
            ];
          outputs = [ { port_name = "q"; port_width = w; port_signal = "q" } ];
          nodes =
            nodes
            @ [ Netlist.Reg { out = "q"; width = w; next = last; enable = Some "c"; init = Some (Bitvec.zero (u w)) } ];
        }
      in
      Netlist.validate m;
      let drive cycle =
        [
          ("a", Bitvec.of_int (u w) (Hashtbl.hash (seed, cycle, "a")));
          ("b", Bitvec.of_int (u w) (Hashtbl.hash (seed, cycle, "b")));
          ("c", Bitvec.of_int (u 1) (Hashtbl.hash (seed, cycle, "c")));
        ]
      in
      let trace kind = Vcd.trace ~engine:kind m ~cycles:6 ~drive in
      Vcd.traces_equal (trace Engine.Interp) (trace Engine.Compiled))

(* property: the simulator agrees with direct Comb_eval on random two-input
   expressions *)
let prop_sim_matches_comb_eval =
  QCheck.Test.make ~name:"sim matches comb_eval" ~count:200
    (QCheck.triple (QCheck.int_bound 0xFFFF) (QCheck.int_bound 0xFFFF)
       (QCheck.oneofl [ "comb.add"; "comb.sub"; "comb.mul"; "comb.and"; "comb.or"; "comb.xor"; "comb.icmp_ult" ]))
    (fun (a, b, op) ->
      let w = 16 in
      let rw = if op = "comb.icmp_ult" then 1 else w in
      let m =
        {
          Netlist.mod_name = "t";
          inputs =
            [
              { Netlist.port_name = "a"; port_width = w; port_signal = "a" };
              { port_name = "b"; port_width = w; port_signal = "b" };
            ];
          outputs = [ { port_name = "o"; port_width = rw; port_signal = "o" } ];
          nodes = [ Netlist.Comb { out = "o"; width = rw; op; attrs = []; inputs = [ "a"; "b" ] } ];
        }
      in
      let s = Sim.create m in
      Sim.set_input s "a" (bv w a);
      Sim.set_input s "b" (bv w b);
      Sim.eval s;
      let direct = Ir.Comb_eval.eval ~name:op ~attrs:[] ~ops:[ bv w a; bv w b ] ~result_width:rw in
      Bitvec.equal_value (Sim.output s "o") direct)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_sim_matches_comb_eval; prop_engines_agree ]

let () =
  Alcotest.run "rtl"
    [
      ( "sim",
        [
          Alcotest.test_case "counter" `Quick test_sim_counter;
          Alcotest.test_case "stall enable" `Quick test_sim_stall_enable;
          Alcotest.test_case "rom" `Quick test_sim_rom;
          Alcotest.test_case "vcd trace" `Quick test_vcd_trace;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "comb cycle detected" `Quick test_comb_cycle_detected;
          Alcotest.test_case "undefined signal" `Quick test_undefined_signal_detected;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
      ( "engine",
        [
          Alcotest.test_case "compiled counter" `Quick test_compiled_counter;
          Alcotest.test_case "compiled stall enable" `Quick test_compiled_stall_enable;
          Alcotest.test_case "compiled rom" `Quick test_compiled_rom;
          Alcotest.test_case "cross-engine vcd (counter)" `Quick test_cross_engine_vcd_counter;
          Alcotest.test_case "cross-engine vcd (generated ISAX)" `Quick
            test_cross_engine_vcd_isax;
          Alcotest.test_case "62/63/64/65-bit arithmetic" `Quick test_wide_boundary_arith;
          Alcotest.test_case "65-bit register accumulate" `Quick test_wide_register_accumulate;
          Alcotest.test_case "engine/backend name parsing" `Quick test_engine_kind_parse;
        ] );
      ( "sv",
        [
          Alcotest.test_case "counter emission" `Quick test_sv_emission;
          Alcotest.test_case "generated ISAX module" `Quick test_sv_generated_isax;
        ] );
      ( "v2001",
        [
          Alcotest.test_case "counter emission" `Quick test_v2001_emission;
          Alcotest.test_case "lint catches SV keywords" `Quick test_v2001_lint_catches_sv;
          Alcotest.test_case "generated ISAX module" `Quick test_v2001_generated_isax;
        ] );
      ("properties", qcheck_cases);
    ]
