(* Tests for the ASIC flow model: technology mapping, static timing
   analysis, and the Table 4 invariants the evaluation relies on. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let u w = Bitvec.unsigned_ty w
let bv w v = Bitvec.of_int (u w) v

let adder_module w =
  {
    Rtl.Netlist.mod_name = "adder";
    inputs =
      [
        { Rtl.Netlist.port_name = "a"; port_width = w; port_signal = "a" };
        { port_name = "b"; port_width = w; port_signal = "b" };
      ];
    outputs = [ { port_name = "o"; port_width = w; port_signal = "o" } ];
    nodes = [ Rtl.Netlist.Comb { out = "o"; width = w; op = "comb.add"; attrs = []; inputs = [ "a"; "b" ] } ];
  }

let test_synth_area_scales_with_width () =
  let r8 = Asic.Synth.synthesize (adder_module 8) in
  let r32 = Asic.Synth.synthesize (adder_module 32) in
  check_bool "wider adder is bigger" true (r32.Asic.Synth.area_um2 > r8.Asic.Synth.area_um2);
  check_bool "area positive" true (r8.Asic.Synth.area_um2 > 0.0)

let test_sta_chain () =
  (* two chained adders have a longer critical path than one *)
  let chain =
    {
      Rtl.Netlist.mod_name = "chain";
      inputs = [ { Rtl.Netlist.port_name = "a"; port_width = 32; port_signal = "a" } ];
      outputs = [ { port_name = "o"; port_width = 32; port_signal = "o" } ];
      nodes =
        [
          Rtl.Netlist.Comb { out = "m"; width = 32; op = "comb.add"; attrs = []; inputs = [ "a"; "a" ] };
          Rtl.Netlist.Comb { out = "o"; width = 32; op = "comb.add"; attrs = []; inputs = [ "m"; "a" ] };
        ];
    }
  in
  let one = Asic.Synth.synthesize (adder_module 32) in
  let two = Asic.Synth.synthesize chain in
  check_bool "chained path longer" true
    (two.Asic.Synth.critical_path_ns > one.Asic.Synth.critical_path_ns)

let test_sta_registers_break_paths () =
  (* inserting a register between the adders restores the single-adder path *)
  let piped =
    {
      Rtl.Netlist.mod_name = "piped";
      inputs = [ { Rtl.Netlist.port_name = "a"; port_width = 32; port_signal = "a" } ];
      outputs = [ { port_name = "o"; port_width = 32; port_signal = "o" } ];
      nodes =
        [
          Rtl.Netlist.Comb { out = "m"; width = 32; op = "comb.add"; attrs = []; inputs = [ "a"; "a" ] };
          Rtl.Netlist.Reg { out = "r"; width = 32; next = "m"; enable = None; init = None };
          Rtl.Netlist.Comb { out = "o"; width = 32; op = "comb.add"; attrs = []; inputs = [ "r"; "a" ] };
        ];
    }
  in
  let one = Asic.Synth.synthesize (adder_module 32) in
  let p = Asic.Synth.synthesize piped in
  Alcotest.(check (float 0.05)) "path equals single adder" one.Asic.Synth.critical_path_ns
    p.Asic.Synth.critical_path_ns

let test_rom_area () =
  let rom =
    {
      Rtl.Netlist.mod_name = "rom";
      inputs = [ { Rtl.Netlist.port_name = "i"; port_width = 8; port_signal = "i" } ];
      outputs = [ { port_name = "o"; port_width = 8; port_signal = "o" } ];
      nodes =
        [ Rtl.Netlist.Rom { out = "o"; width = 8; table = Array.make 256 (bv 8 0); index = "i" } ];
    }
  in
  let r = Asic.Synth.synthesize rom in
  check_bool "rom area accounted" true (r.Asic.Synth.rom_area_um2 > 0.0)

(* ---- Table 4 level invariants ---- *)

let run name core =
  Asic.Flow.run ~isax_name:name (Longnail.Flow.compile core (Isax.Registry.compile_by_name name))

let test_overheads_positive () =
  List.iter
    (fun core ->
      List.iter
        (fun (e : Isax.Registry.entry) ->
          let r = run e.name core in
          check_bool
            (Printf.sprintf "%s/%s area overhead positive" e.name core.Scaiev.Datasheet.core_name)
            true
            (r.Asic.Flow.area_overhead_pct > 0.0);
          check_bool "freq sane" true
            (r.Asic.Flow.achieved_freq_mhz > 0.3 *. core.Scaiev.Datasheet.base_freq_mhz))
        Isax.Registry.all)
    [ Scaiev.Datasheet.vexriscv; Scaiev.Datasheet.piccolo ]

let test_sqrt_is_largest () =
  let core = Scaiev.Datasheet.vexriscv in
  let sqrt_t = run "sqrt_tightly" core in
  List.iter
    (fun small ->
      let r = run small core in
      check_bool
        (Printf.sprintf "sqrt bigger than %s" small)
        true
        (sqrt_t.Asic.Flow.area_overhead_pct > r.Asic.Flow.area_overhead_pct))
    [ "autoinc"; "dotprod"; "ijmp"; "sbox"; "zol" ]

let test_orca_forwarding_regressions () =
  (* the paper's Section 5.4 narrative: dotprod and sparkle regress on
     ORCA (forwarding path), but not on VexRiscv *)
  let dot_orca = run "dotprod" Scaiev.Datasheet.orca in
  let dot_vex = run "dotprod" Scaiev.Datasheet.vexriscv in
  check_bool "dotprod orca regresses" true (dot_orca.Asic.Flow.freq_delta_pct < -5.0);
  check_bool "dotprod vex does not" true (dot_vex.Asic.Flow.freq_delta_pct > -5.0);
  let sp_orca = run "sparkle" Scaiev.Datasheet.orca in
  check_bool "sparkle orca regresses" true (sp_orca.Asic.Flow.freq_delta_pct < -10.0)

let test_decoupled_recovers_frequency () =
  (* sqrt_decoupled avoids the tightly-coupled stall path: on ORCA the
     decoupled variant is much faster than the tightly-coupled one *)
  let t = run "sqrt_tightly" Scaiev.Datasheet.orca in
  let d = run "sqrt_decoupled" Scaiev.Datasheet.orca in
  check_bool
    (Printf.sprintf "decoupled %.1f%% vs tightly %.1f%%" d.Asic.Flow.freq_delta_pct
       t.Asic.Flow.freq_delta_pct)
    true
    (d.Asic.Flow.freq_delta_pct > t.Asic.Flow.freq_delta_pct +. 10.0)

let test_hazard_handling_ablation () =
  (* Table 4's "without data-hazard handling" row: less adapter area *)
  let tu = Isax.Registry.compile_by_name "sqrt_decoupled" in
  let core = Scaiev.Datasheet.orca in
  let with_h = Asic.Flow.run ~isax_name:"sqrt_decoupled" (Longnail.Flow.compile core tu) in
  let without =
    Asic.Flow.run ~isax_name:"sqrt_decoupled"
      (Longnail.Flow.compile
         ~request:(Longnail.Flow.Request.make ~hazard_handling:false ())
         core tu)
  in
  check_bool "hazard handling costs area" true
    (without.Asic.Flow.adapter_area_um2 < with_h.Asic.Flow.adapter_area_um2)

let test_determinism () =
  let a = run "dotprod" Scaiev.Datasheet.vexriscv in
  let b = run "dotprod" Scaiev.Datasheet.vexriscv in
  Alcotest.(check (float 1e-9)) "deterministic area" a.Asic.Flow.total_area_um2 b.Asic.Flow.total_area_um2;
  Alcotest.(check (float 1e-9)) "deterministic freq" a.Asic.Flow.achieved_freq_mhz b.Asic.Flow.achieved_freq_mhz

let test_report_generation () =
  let c = Longnail.Flow.compile Scaiev.Datasheet.vexriscv (Isax.Registry.compile_by_name "zol") in
  let md = Asic.Report.generate ~isax_name:"zol" c in
  let contains needle =
    let nl = String.length needle and hl = String.length md in
    let rec go i = i + nl <= hl && (String.sub md i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "title" true (contains "# Longnail report: zol on VexRiscv");
  check_bool "functionality table" true (contains "| setup_zol | instruction |");
  check_bool "always row" true (contains "| zol | always |");
  check_bool "schedule section" true (contains "## Interface schedule");
  check_bool "asic section" true (contains "## ASIC cost");
  check_bool "config embedded" true (contains "```yaml")

let () =
  Alcotest.run "asic"
    [
      ( "synth",
        [
          Alcotest.test_case "area scales" `Quick test_synth_area_scales_with_width;
          Alcotest.test_case "sta chain" `Quick test_sta_chain;
          Alcotest.test_case "registers break paths" `Quick test_sta_registers_break_paths;
          Alcotest.test_case "rom area" `Quick test_rom_area;
        ] );
      ( "table4",
        [
          Alcotest.test_case "overheads positive" `Slow test_overheads_positive;
          Alcotest.test_case "sqrt largest" `Quick test_sqrt_is_largest;
          Alcotest.test_case "orca forwarding regressions" `Quick test_orca_forwarding_regressions;
          Alcotest.test_case "decoupled recovers freq" `Quick test_decoupled_recovers_frequency;
          Alcotest.test_case "hazard ablation" `Quick test_hazard_handling_ablation;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ("report", [ Alcotest.test_case "markdown generation" `Quick test_report_generation ]);
    ]
