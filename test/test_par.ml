(* The parallel compilation driver: Par pool semantics, session
   thread-safety under concurrent lookups, and the determinism contract
   of Flow.compile_many / Dse.explore — parallel runs must produce the
   exact artifact bytes, point lists and (merged) profile tree shapes of
   a sequential run. Domains are real even on a single-core host, so
   these tests exercise true multi-domain interleavings everywhere. *)

let jobs = 4

(* ---- Par pool semantics ---- *)

let test_run_ordering () =
  let tasks = List.init 23 (fun i () -> i * i) in
  Alcotest.(check (list int))
    "results in task order"
    (List.init 23 (fun i -> i * i))
    (Par.run ~jobs tasks);
  Alcotest.(check (list int))
    "map in input order"
    (List.init 23 (fun i -> i + 1))
    (Par.map ~jobs (fun x -> x + 1) (List.init 23 Fun.id))

let test_run_zero_and_one () =
  Alcotest.(check (list int)) "zero tasks" [] (Par.run ~jobs []);
  Alcotest.(check (list int)) "one task" [ 7 ] (Par.run ~jobs [ (fun () -> 7) ]);
  Alcotest.(check (list int))
    "jobs=1 runs inline" [ 1; 2 ]
    (Par.run ~jobs:1 [ (fun () -> 1); (fun () -> 2) ])

exception Boom of int

let test_exception_propagation () =
  (* several tasks fail: the lowest-index failure must surface, like a
     sequential left-to-right run *)
  let tasks =
    List.init 16 (fun i () -> if i = 3 || i = 11 then raise (Boom i) else i)
  in
  (match Par.run ~jobs tasks with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i -> Alcotest.(check int) "lowest-index failure" 3 i);
  (* the pool survives a failed batch: a fresh run still works *)
  Alcotest.(check (list int)) "pool reusable" [ 0; 1 ] (Par.run ~jobs [ (fun () -> 0); (fun () -> 1) ])

let test_nested_rejection () =
  (* a parallel region inside a worker must be rejected, not deadlock *)
  let saw_nested = ref false in
  let tasks =
    List.init 4 (fun i () ->
        if i = 0 then (
          (* two inner tasks: a singleton would clamp to jobs=1 and run
             inline, which is the legal sequential fallback *)
          match Par.run ~jobs:2 [ (fun () -> 0); (fun () -> 1) ] with
          | _ -> ()
          | exception Par.Nested_parallelism -> saw_nested := true);
        i)
  in
  (match Par.run ~jobs:2 tasks with
  | _ -> ()
  | exception Par.Nested_parallelism -> ());
  Alcotest.(check bool) "nested jobs>1 rejected in worker" true !saw_nested;
  (* jobs=1 must compose inside a worker (inline sequential fallback) *)
  let inner =
    Par.run ~jobs:2 [ (fun () -> Par.run ~jobs:1 [ (fun () -> 42) ]); (fun () -> [ 0 ]) ]
  in
  Alcotest.(check (list (list int))) "jobs=1 nests inline" [ [ 42 ]; [ 0 ] ] inner;
  Alcotest.(check bool) "not in worker outside a region" false (Par.in_worker ());
  Alcotest.(check bool) "workers available" true (Par.available_workers () >= 1)

(* ---- concurrent sessions: single-flight stores ---- *)

let test_concurrent_session_single_flight () =
  (* the same target compiled from 4 workers at once: exactly one domain
     computes and stores it, the rest wait and count as hits *)
  let tu = Isax.Registry.compile_by_name "dotprod" in
  let core = Scaiev.Datasheet.vexriscv in
  let session = Longnail.Flow.create_session () in
  Longnail.Flow.warm_ir session tu;
  let before = Longnail.Flow.session_stats session in
  let compiled =
    Par.run ~jobs
      (List.init jobs (fun _ () ->
           Longnail.Flow.compile
             ~request:(Longnail.Flow.Request.make ~session ())
             core tu))
  in
  Alcotest.(check int) "all workers returned" jobs (List.length compiled);
  (match compiled with
  | first :: rest ->
      List.iter
        (fun (c : Longnail.Flow.compiled) ->
          Alcotest.(check bool) "single-flight shares the value" true (c == first))
        rest
  | [] -> assert false);
  let delta name =
    let st l = List.assoc name l in
    let b = st before and a = st (Longnail.Flow.session_stats session) in
    Cache.Store.
      ( a.hits - b.hits,
        a.misses - b.misses,
        a.stores - b.stores )
  in
  let hits, misses, stores = delta "target" in
  Alcotest.(check int) "exactly one target miss" 1 misses;
  Alcotest.(check int) "exactly one target store" 1 stores;
  Alcotest.(check int) "other workers hit" (jobs - 1) hits

let test_concurrent_distinct_keys () =
  (* distinct targets from concurrent workers: no cross-serialization
     bug loses a store, every artifact lands *)
  let tu = Isax.Registry.compile_by_name "dotprod" in
  let session = Longnail.Flow.create_session () in
  let cores = Scaiev.Core_registry.datasheets () in
  let compiled =
    let request = Longnail.Flow.Request.make ~session () in
    Par.run ~jobs (List.map (fun core () -> Longnail.Flow.compile ~request core tu) cores)
  in
  List.iter2
    (fun (core : Scaiev.Datasheet.t) (c : Longnail.Flow.compiled) ->
      Alcotest.(check string) "compiled for its own core" core.core_name
        c.core.Scaiev.Datasheet.core_name)
    cores compiled;
  let st = List.assoc "target" (Longnail.Flow.session_stats session) in
  Alcotest.(check int) "one store per core" (List.length cores) st.Cache.Store.stores

(* ---- parallel == sequential: artifact bytes ---- *)

let artifact_bytes (c : Longnail.Flow.compiled) =
  String.concat "\x00"
    (List.map (fun (f : Longnail.Flow.compiled_functionality) -> f.cf_name ^ "\x02" ^ f.cf_sv) c.funcs)
  ^ "\x01" ^ c.config_yaml

let test_parallel_equals_sequential () =
  (* every bundled ISAX x every core, jobs=4 vs jobs=1: identical SV and
     YAML bytes, in identical order *)
  let targets =
    List.concat_map
      (fun (core : Scaiev.Datasheet.t) ->
        List.map
          (fun (e : Isax.Registry.entry) -> (core, Isax.Registry.compile e))
          Isax.Registry.all)
      (Scaiev.Core_registry.datasheets ())
  in
  let run jobs =
    let session = Longnail.Flow.create_session () in
    let request = Longnail.Flow.Request.make ~session ~jobs () in
    List.map artifact_bytes (Longnail.Flow.compile_many ~request targets)
  in
  let seq = run 1 and par = run jobs in
  Alcotest.(check int) "same target count" (List.length seq) (List.length par);
  List.iteri
    (fun i (s, p) ->
      if s <> p then Alcotest.failf "artifact bytes of target %d diverge at jobs=%d" i jobs)
    (List.combine seq par);
  Alcotest.(check bool) "byte-identical grid" true (seq = par)

(* ---- parallel == sequential: merged profile trees ---- *)

let rec span_shape (sp : Obs.span) =
  (* name, metric names, children shapes — everything except wall times *)
  Printf.sprintf "%s(%s)[%s]" sp.Obs.sp_name
    (String.concat "," (List.map fst (Obs.metrics sp)))
    (String.concat ";" (List.map span_shape (Obs.children sp)))

let test_obs_tree_determinism () =
  (* distinct targets at jobs=4: the merged span tree has one target:*
     child per target, in task order, with the same shape as jobs=1 *)
  let tu = Isax.Registry.compile_by_name "dotprod" in
  let targets = List.map (fun core -> (core, tu)) (Scaiev.Core_registry.datasheets ()) in
  let run jobs =
    let obs = Obs.create ~name:"compile" () in
    let session = Longnail.Flow.create_session () in
    Longnail.Flow.warm_ir session tu;
    let request = Longnail.Flow.Request.make ~session ~obs ~jobs () in
    ignore (Longnail.Flow.compile_many ~request targets);
    Obs.finish obs;
    Obs.root obs
  in
  let seq = run 1 and par = run jobs in
  let pc sp =
    match Obs.find_span sp "parallel_compile" with
    | Some s -> s
    | None -> Alcotest.fail "missing parallel_compile span"
  in
  let child_names sp = List.map (fun (s : Obs.span) -> s.Obs.sp_name) (Obs.children (pc sp)) in
  Alcotest.(check (list string))
    "one target:CORE child per target, in task order"
    (List.map (fun ((c : Scaiev.Datasheet.t), _) -> "target:" ^ c.core_name) targets)
    (child_names par);
  Alcotest.(check (list string)) "same children as sequential" (child_names seq)
    (child_names par);
  Alcotest.(check string) "identical merged tree shape" (span_shape seq) (span_shape par);
  Alcotest.(check (option int))
    "par.workers recorded"
    (Some (min jobs (List.length targets)))
    (Obs.get_int (pc par) "par.workers");
  (* a repeated parallel run has the same shape as itself (no scheduling
     dependence) *)
  Alcotest.(check string) "parallel shape reproducible" (span_shape (run jobs))
    (span_shape (run jobs))

(* ---- parallel == sequential: Dse.explore ---- *)

let test_dse_parallel_equals_sequential () =
  let tu = Isax.Registry.compile_by_name "dotprod" in
  let core = Scaiev.Datasheet.vexriscv in
  let measure (c : Longnail.Flow.compiled) =
    ( float_of_int
        (List.fold_left
           (fun a (f : Longnail.Flow.compiled_functionality) -> a + f.cf_hw.Longnail.Hwgen.pipe_reg_bits)
           0 c.funcs),
      440.0 )
  in
  let seq = Longnail.Dse.explore ~measure core tu in
  let par =
    Longnail.Dse.explore ~request:(Longnail.Flow.Request.make ~jobs ()) ~measure core tu
  in
  Alcotest.(check bool) "identical point lists" true (seq = par);
  Alcotest.(check bool) "non-empty sweep" true (seq <> [])

(* ---- the Request API: E0902 conflicts ---- *)

let check_e0902 what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected E0902" what
  | exception Diag.Fatal [ d ] -> Alcotest.(check string) what "E0902" d.Diag.code
  | exception Diag.Fatal _ -> Alcotest.failf "%s: expected a single diagnostic" what

let test_request_conflicts () =
  let tu = Isax.Registry.compile_by_name "dotprod" in
  let core = Scaiev.Datasheet.vexriscv in
  let knobs = Longnail.Flow.default_knobs in
  check_e0902 "knobs + scheduler" (fun () ->
      Longnail.Flow.Request.make ~knobs ~scheduler:Longnail.Sched_build.Asap ());
  check_e0902 "knobs + delay" (fun () ->
      Longnail.Flow.Request.make ~knobs ~delay:Longnail.Delay_model.Physical ());
  check_e0902 "knobs + cycle_time" (fun () ->
      Longnail.Flow.Request.make ~knobs ~cycle_time:3.5 ());
  check_e0902 "knobs + hazard_handling" (fun () ->
      Longnail.Flow.Request.make ~knobs ~hazard_handling:false ());
  check_e0902 "jobs < 1" (fun () -> Longnail.Flow.Request.make ~jobs:0 ());
  check_e0902 "sweep + request session" (fun () ->
      Longnail.Dse.explore
        ~sweep:(Longnail.Dse.sweep_session ())
        ~request:(Longnail.Flow.Request.make ~session:(Longnail.Flow.create_session ()) ())
        ~measure:(fun _ -> (0.0, 0.0))
        core tu);
  (* legal combinations stay legal: individual knob shorthands compose
     with session/obs/jobs, and a full knobs record alone is fine *)
  let session = Longnail.Flow.create_session () in
  let obs = Obs.create () in
  ignore
    (Longnail.Flow.compile
       ~request:
         (Longnail.Flow.Request.make ~scheduler:Longnail.Sched_build.Ilp ~session ~obs ())
       core tu);
  ignore
    (Longnail.Flow.compile
       ~request:(Longnail.Flow.Request.make ~knobs ~session ~obs ~jobs:2 ())
       core tu)

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "result ordering" `Quick test_run_ordering;
          Alcotest.test_case "zero and one task" `Quick test_run_zero_and_one;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
          Alcotest.test_case "nested-region rejection" `Quick test_nested_rejection;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "single-flight same target" `Quick
            test_concurrent_session_single_flight;
          Alcotest.test_case "distinct keys concurrently" `Quick test_concurrent_distinct_keys;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "artifact bytes (grid, jobs=4)" `Quick
            test_parallel_equals_sequential;
          Alcotest.test_case "merged obs trees" `Quick test_obs_tree_determinism;
          Alcotest.test_case "dse sweep" `Quick test_dse_parallel_equals_sequential;
        ] );
      ( "request",
        [ Alcotest.test_case "E0902 conflicts" `Quick test_request_conflicts ] );
    ]
